"""Pluggable policy subsystem: a registry of named caching/service policies.

The policy-side twin of :mod:`repro.workloads`: every policy — the paper's
MDP cache-update controller and Lyapunov service controller, plus every
baseline — is registered under a short name, and callers refer to one
through a :class:`PolicySpec` (``"mdp"``, ``"lyapunov:tradeoff_v=50"``,
``"threshold:threshold=0.6"``).  Specs are frozen, picklable, and
canonical: equal spellings hash equal, so MDP solves are shared through the
solve cache from every call site.

Quickstart::

    from repro import PolicySpec, ScenarioConfig, simulate

    spec = PolicySpec.parse("mdp:mode=factored")
    result = simulate(ScenarioConfig.fig1a(), spec, num_slots=200)

Registering a new policy::

    from repro.policies import register_policy

    @register_policy("my-policy", role="caching")
    def build_my_policy(scenario, *, knob: float = 1.0):
        return MyPolicy(knob)
"""

from repro.policies.onpath import (
    CacheLessForMore,
    EdgeCaching,
    LeaveCopyDown,
    LeaveCopyEverywhere,
    OnPathStrategy,
    PartitionedCaching,
    ProbCache,
)
from repro.policies.registry import (
    PolicyEntry,
    PolicySpec,
    available_policies,
    create_policy,
    get_policy_entry,
    list_policies,
    register_policy,
)

__all__ = [
    "CacheLessForMore",
    "EdgeCaching",
    "LeaveCopyDown",
    "LeaveCopyEverywhere",
    "OnPathStrategy",
    "PartitionedCaching",
    "ProbCache",
    "PolicyEntry",
    "PolicySpec",
    "available_policies",
    "create_policy",
    "get_policy_entry",
    "list_policies",
    "register_policy",
]
