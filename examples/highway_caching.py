#!/usr/bin/env python3
"""Highway cache management: MDP policy versus every baseline.

The scenario the paper motivates: a highway divided into regions whose
traffic conditions are published as contents, cached at RSUs, and refreshed
by the MBS over a costly backhaul.  This example compares the MDP update
policy against all baseline policies on identical workloads and prints a
comparison table plus the per-policy AoI trace of one representative content.

Usage::

    python examples/highway_caching.py [num_slots]
"""

from __future__ import annotations

import sys

from repro import CacheSimulator, MDPCachingPolicy, ScenarioConfig
from repro.analysis import format_table, render_series
from repro.baselines import standard_caching_baselines


def main(num_slots: int = 300) -> None:
    """Compare caching policies on the highway scenario."""
    config = ScenarioConfig.fig1a(seed=7).with_overrides(num_slots=num_slots)

    policies = {"mdp": MDPCachingPolicy(config.build_mdp_config())}
    policies.update(standard_caching_baselines(weight=config.aoi_weight, rng=7))

    rows = []
    traces = {}
    for name, policy in policies.items():
        result = CacheSimulator(config, policy).run()
        summary = result.metrics.summary()
        rows.append(
            {
                "policy": name,
                "total_reward": summary["total_reward"],
                "mean_age": summary["mean_age"],
                "violations": summary["violation_fraction"],
                "updates": summary["total_updates"],
                "mbs_cost": summary["total_cost"],
            }
        )
        traces[name] = result.metrics.age_trace(0, 0).ages

    rows.sort(key=lambda row: -row["total_reward"])
    print(f"Highway scenario: {config.num_contents} contents over "
          f"{config.num_rsus} RSUs, {num_slots} slots\n")
    print(format_table(rows))

    print("\nAoI of RSU 1 / content 1 under three representative policies")
    selected = {name: traces[name] for name in ("mdp", "never", "periodic") if name in traces}
    print(render_series(selected, title="content AoI over time", height=12))


if __name__ == "__main__":
    horizon = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    main(horizon)
