#!/usr/bin/env python3
"""Quickstart: solve the caching MDP and simulate the paper's Fig. 1a setup.

Runs the MBS cache-update controller (the paper's MDP policy) on the Fig. 1a
scenario — 4 RSUs each caching 5 contents with random maximum-AoI limits —
for a few hundred slots, then prints the headline metrics and an ASCII
rendition of the figure.

Usage::

    python examples/quickstart.py [num_slots]
"""

from __future__ import annotations

import sys

from repro import CacheSimulator, MDPCachingPolicy, ScenarioConfig
from repro.analysis import build_fig1a_data, render_fig1a


def main(num_slots: int = 300) -> None:
    """Run the quickstart experiment for *num_slots* slots."""
    config = ScenarioConfig.fig1a(seed=0).with_overrides(num_slots=num_slots)
    policy = MDPCachingPolicy(config.build_mdp_config())

    print(f"Scenario: {config.num_rsus} RSUs x {config.contents_per_rsu} contents, "
          f"{config.num_slots} slots, AoI weight w={config.aoi_weight}")
    print("Solving the per-content update MDPs and simulating...")

    result = CacheSimulator(config, policy).run()
    summary = result.summary()

    print("\nHeadline metrics")
    print("-" * 40)
    for key in (
        "total_reward",
        "mean_reward",
        "total_cost",
        "total_updates",
        "mean_age",
        "violation_fraction",
    ):
        print(f"  {key:20s} {summary[key]:10.3f}")

    print("\nReproduced Fig. 1a (ASCII rendition)")
    print("-" * 40)
    figure = build_fig1a_data(config, policy=MDPCachingPolicy(config.build_mdp_config()))
    print(render_fig1a(figure))


if __name__ == "__main__":
    horizon = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    main(horizon)
