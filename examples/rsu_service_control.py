#!/usr/bin/env python3
"""Delay-aware RSU content service: the Lyapunov controller and its V knob.

Reproduces the Fig. 1b comparison (Lyapunov vs. always-serve vs. cost-greedy)
and then sweeps the trade-off coefficient V to show the classic
drift-plus-penalty behaviour: larger V saves communication cost at the price
of a longer request queue.

Usage::

    python examples/rsu_service_control.py [num_slots]
"""

from __future__ import annotations

import sys

from repro import LyapunovServiceController, ScenarioConfig, ServiceSimulator
from repro.analysis import build_fig1b_data, format_table, render_fig1b, v_sweep


def main(num_slots: int = 400) -> None:
    """Run the Fig. 1b comparison and a V sweep."""
    config = ScenarioConfig.fig1b(seed=3).with_overrides(num_slots=num_slots)

    print(f"Service scenario: {config.num_rsus} RSUs, arrival rate "
          f"{config.arrival_rate}/slot, V={config.tradeoff_v}, {num_slots} slots\n")

    print("Reproduced Fig. 1b (ASCII rendition)")
    print("-" * 40)
    data = build_fig1b_data(config)
    print(render_fig1b(data))

    print("\nLyapunov V sweep (cost vs. backlog trade-off)")
    print("-" * 40)
    rows = v_sweep([1.0, 5.0, 10.0, 25.0, 50.0, 100.0], config=config)
    print(format_table(rows))

    print("\nInterpretation: raising V lowers the time-average cost towards its")
    print("optimum (O(1/V)) while the time-average backlog grows roughly O(V),")
    print("which is the knob the paper's Eq. (5) exposes to the operator.")


if __name__ == "__main__":
    horizon = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    main(horizon)
