#!/usr/bin/env python3
"""Live serving: stream a recorded workload into ``repro.cli serve``.

End-to-end tour of the serving mode:

1. Export a request trace from the Fig. 1b scenario's own workload.
2. Run the offline baseline: a batch ``simulate()`` over the trace.
3. Spawn ``python -m repro.cli serve`` as a real subprocess bound to an
   ephemeral port.
4. Replay the trace over TCP with :class:`repro.ServeClient`, taking a
   mid-run snapshot on the way, and close the session.
5. Compare the served summary with the offline one — the serving path
   runs the identical per-slot engine, so they must match exactly.

The final line prints ``byte-identical: True``; CI greps for it.

Usage::

    python examples/live_serving.py [num_slots]
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

from repro import ScenarioConfig, ServeClient, export_trace, simulate
from repro.sim.system import SystemState

POLICIES = ("myopic", "lyapunov")


def main(num_slots: int = 120) -> int:
    base = ScenarioConfig.fig1b(seed=7).with_overrides(num_slots=num_slots)

    with tempfile.TemporaryDirectory() as workdir:
        trace_path = os.path.join(workdir, "workload.jsonl")
        written = export_trace(SystemState(base).workload, num_slots, trace_path)
        print(f"Exported {written} requests over {num_slots} slots")

        # The replayed trace is the scenario's workload from here on.
        config = base.with_overrides(workload=f"trace:path={trace_path}")
        scenario_path = os.path.join(workdir, "scenario.json")
        with open(scenario_path, "w", encoding="utf-8") as handle:
            json.dump(config.to_dict(), handle)

        print("Running the offline baseline (batch simulate)...")
        offline = simulate(
            config, POLICIES, num_slots=num_slots, metrics="summary"
        )

        print("Spawning the serve subprocess on an ephemeral port...")
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--scenario", scenario_path,
                "--policy", POLICIES[0], "--policy", POLICIES[1],
            ],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            ready = server.stdout.readline().strip()
            print(f"  {ready}")
            port = int(ready.rsplit(":", 1)[1])

            with ServeClient("127.0.0.1", port) as client:
                sent = client.replay(trace_path)
                snapshot = client.snapshot()
                print(
                    f"Streamed {sent} records; mid-run snapshot at slot "
                    f"{snapshot['time_slot']} ({snapshot['pending']} pending)"
                )
                final = client.close()
        finally:
            server.terminate()
            server.wait(timeout=10)

        print(
            f"Session closed at slot {final['time_slot']}: "
            f"{final['requests']} requests applied, "
            f"{final['dropped']} dropped, {final['late']} late"
        )
        served = final["summary"]
        expected = offline.summary()
        print("\nServed vs offline summary")
        print("-" * 40)
        for key in sorted(expected):
            print(f"  {key:24s} {served[key]!s:>14} {expected[key]!s:>14}")
        identical = served == expected
        print(f"\nbyte-identical: {identical}")
        return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 120))
