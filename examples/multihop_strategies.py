#!/usr/bin/env python3
"""Multi-hop mode: compare the on-path caching family against mdp/lyapunov.

Routes every request through the graph-backed network core (``NetworkModel``
/ ``NetworkController``) on a line of RSUs: a miss at the receiving RSU
walks toward neighbouring RSUs and, failing those, the origin server, and
each on-path strategy decides where along the delivery path to leave a
copy.  The same ``simulate()`` façade also accepts the paper's ``mdp``
cache-update policy (static placement, refreshed per slot) and the
``lyapunov`` service controller (queue-drain decisions per RSU), so all
three policy roles are compared on one scenario.

Usage::

    python examples/multihop_strategies.py [num_slots]
"""

from __future__ import annotations

import sys

from repro import ScenarioConfig, simulate

#: The Icarus-style on-path strategies, plus both of the paper's controllers.
POLICIES = [
    "lce",
    "lcd",
    "probcache:t_tw=10",
    "partition",
    "cl4m",
    "edge",
    "mdp",
    "lyapunov",
]


def main(num_slots: int = 200) -> None:
    config = ScenarioConfig(
        num_rsus=6,
        contents_per_rsu=4,
        num_slots=num_slots,
        seed=0,
        topology_kind="line",
    )
    print(
        f"Scenario: {config.num_rsus} RSUs on a {config.topology_kind} "
        f"topology, {config.contents_per_rsu} contents each, "
        f"{config.num_slots} slots"
    )
    print("Routing every request through the multi-hop network core...\n")

    results = simulate(config, POLICIES, kind="multihop")

    header = f"{'policy':24s} {'hit_ratio':>10s} {'mean_hops':>10s} " \
             f"{'mean_latency':>13s} {'served':>8s}"
    print(header)
    print("-" * len(header))
    for result in results:
        summary = result.summary()
        print(
            f"{result.policy_name:24s} {summary['hit_ratio']:10.3f} "
            f"{summary['mean_hops']:10.3f} {summary['mean_latency']:13.3f} "
            f"{summary['total_served']:8.0f}"
        )

    print(
        "\nOn-path strategies trade hit ratio against where copies land on"
        "\nthe delivery path; mdp refreshes a static placement (every request"
        "\nis local), and lyapunov holds requests in per-RSU queues before"
        "\nserving them edge-style."
    )


if __name__ == "__main__":
    horizon = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    main(horizon)
