#!/usr/bin/env python3
"""Rapidly changing road conditions: adaptive caching under drifting demand.

The paper motivates its controllers with "rapidly changed road environment
and user mobility".  This example makes that concrete: each region's traffic
condition evolves as a Markov chain (free flow -> dense -> congested ->
incident), congested regions generate more requests and need fresher
information, and the MBS re-prioritises its per-slot update budget
accordingly.

Two controllers are compared under the same environment sample path:

* the model-based MDP policy, re-planned whenever the popularity profile
  drifts, and
* the model-free online Q-learning policy, which never sees the popularity
  and must learn which contents are worth refreshing from observed rewards.

Usage::

    python examples/dynamic_environment.py [num_slots]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import MDPCachingPolicy, ScenarioConfig
from repro.analysis import format_table, render_series
from repro.core.online import OnlineLearningConfig, QLearningCachingPolicy
from repro.core.policies import CacheObservation
from repro.core.reward import UtilityFunction
from repro.net.cache import RSUCache
from repro.net.environment import DynamicPopularityModel, RegionStateProcess
from repro.utils.rng import ensure_rng


def simulate(policy, config, num_slots: int, seed: int = 0):
    """Drive *policy* against a dynamically re-weighted caching environment."""
    rng = ensure_rng(seed)
    topology = config.build_topology()
    catalog = config.build_catalog(rng)
    process = RegionStateProcess(config.num_regions, rng=seed)
    popularity_model = DynamicPopularityModel(process)
    caches = [
        RSUCache(rsu.rsu_id, rsu.covered_regions, catalog) for rsu in topology.rsus
    ]
    for cache in caches:
        cache.randomize_ages(rng)
    rsu_regions = [list(rsu.covered_regions) for rsu in topology.rsus]
    max_ages = np.stack([cache.max_ages for cache in caches])
    costs = np.full_like(max_ages, config.update_cost)
    utility = UtilityFunction(max_ages, costs, weight=config.aoi_weight)

    rewards = []
    for t in range(num_slots):
        popularity = popularity_model.popularity_matrix(rsu_regions)
        observation = CacheObservation(
            time_slot=t,
            ages=np.stack([cache.ages for cache in caches]),
            max_ages=max_ages,
            popularity=popularity,
            update_costs=costs,
        )
        actions = policy.decide(observation)
        rewards.append(utility.evaluate(observation.ages, actions, popularity).total)
        for k, rsu in enumerate(topology.rsus):
            for slot, content_id in enumerate(rsu.covered_regions):
                if actions[k, slot]:
                    caches[k].apply_update(content_id)
            caches[k].tick(1)
        process.step()
    return np.cumsum(rewards), process


def main(num_slots: int = 400) -> None:
    """Compare the MDP and online learners under drifting road conditions."""
    config = ScenarioConfig.fig1a(seed=2).with_overrides(num_slots=num_slots)

    mdp_rewards, process = simulate(
        MDPCachingPolicy(config.build_mdp_config()), config, num_slots
    )
    online_rewards, _ = simulate(
        QLearningCachingPolicy(OnlineLearningConfig(weight=config.aoi_weight), rng=0),
        config,
        num_slots,
    )

    occupancy = process.occupancy()
    print(f"Dynamic environment over {num_slots} slots "
          f"({config.num_regions} regions)\n")
    print("Traffic-condition occupancy over the run:")
    print(format_table([
        {"condition": state.name.lower(), "fraction_of_time": fraction}
        for state, fraction in occupancy.items()
    ]))

    print("\nCumulative Eq. (1) reward under drifting popularity")
    print(render_series(
        {
            "mdp (model-based)": mdp_rewards,
            "q-learning (model-free)": online_rewards,
        },
        title="cumulative reward",
        height=12,
    ))
    gap = (mdp_rewards[-1] - online_rewards[-1]) / abs(mdp_rewards[-1])
    print(f"\nFinal reward: mdp={mdp_rewards[-1]:.1f}, "
          f"q-learning={online_rewards[-1]:.1f} "
          f"(online learner within {100 * (1 - gap):.1f}% of the model-based policy)")


if __name__ == "__main__":
    horizon = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    main(horizon)
