#!/usr/bin/env python3
"""The full two-stage scheme: cache management coupled with content service.

The paper's conclusion describes a joint system: the MBS keeps RSU caches
fresh (stage 1, MDP) so that RSUs can serve UV requests with valid content
whenever the Lyapunov controller (stage 2) decides to transmit.  This example
runs the coupled simulator twice — once with the MDP cache manager and once
with no cache updates at all — to show that without stage 1 the AoI-validity
guard of stage 2 eventually blocks service and the latency queue blows up.

Usage::

    python examples/joint_two_stage.py [num_slots]
"""

from __future__ import annotations

import sys

from repro import (
    JointSimulator,
    LyapunovServiceController,
    MDPCachingPolicy,
    NeverUpdatePolicy,
    ScenarioConfig,
)
from repro.analysis import format_table, render_series


def run_variant(config, caching_policy, label):
    """Run the joint simulator with one cache-management variant."""
    result = JointSimulator(
        config,
        caching_policy,
        LyapunovServiceController(config.tradeoff_v),
    ).run()
    summary = result.summary()
    return result, {
        "variant": label,
        "cache_reward": summary["cache_total_reward"],
        "cache_violations": summary["cache_violation_fraction"],
        "requests_served": summary["service_total_served"],
        "service_cost": summary["service_total_cost"],
        "avg_latency_queue": summary["service_time_average_backlog"],
    }


def main(num_slots: int = 300) -> None:
    """Compare the coupled system with and without cache management."""
    config = ScenarioConfig.fig1a(seed=5).with_overrides(
        num_slots=num_slots, arrival_rate=0.8
    )

    with_mdp, row_mdp = run_variant(
        config, MDPCachingPolicy(config.build_mdp_config()), "mdp cache mgmt"
    )
    without, row_without = run_variant(config, NeverUpdatePolicy(), "no cache mgmt")

    print(f"Joint two-stage simulation, {num_slots} slots, "
          f"{config.num_rsus} RSUs x {config.contents_per_rsu} contents\n")
    print(format_table([row_mdp, row_without]))

    print("\nTotal latency queue Q[t] (summed over RSUs)")
    print(
        render_series(
            {
                "with MDP cache mgmt": with_mdp.service_metrics.latency_history(),
                "without cache mgmt": without.service_metrics.latency_history(),
            },
            title="latency queue over time",
            height=12,
        )
    )
    print("\nWithout stage 1 the cached contents exceed their AoI limits, the")
    print("validity guard blocks service, and the latency queue grows without")
    print("bound — which is exactly why the paper couples the two stages.")


if __name__ == "__main__":
    horizon = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    main(horizon)
