"""Packaging for the ICDCS'22 AoI-aware caching reproduction.

Declares the real metadata (src layout, numpy dependency) so that
``pip install -e .`` works without PYTHONPATH tricks::

    pip install -e .
    python -m repro.cli run all --seeds 5 --workers 4
"""

import re

from setuptools import find_packages, setup

# Single source of truth for the version: the package itself.
with open("src/repro/__init__.py", encoding="utf-8") as handle:
    VERSION = re.search(r'^__version__ = "([^"]+)"', handle.read(), re.M).group(1)

DESCRIPTION = (
    "Reproduction of 'AoI-Aware Markov Decision Policies for Caching' "
    "(ICDCS 2022): MDP cache management, Lyapunov content service, "
    "vectorised simulators, and a batched parallel experiment runtime"
)

setup(
    name="repro-icdcs22-aoi-caching",
    version=VERSION,
    description=DESCRIPTION,
    long_description=DESCRIPTION,
    long_description_content_type="text/plain",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.9",
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Intended Audience :: Science/Research",
    ],
)
