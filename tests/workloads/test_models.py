"""Behavioural tests of the built-in workload models.

Includes the golden-fingerprint pins asserting the ``stationary`` workload
(and therefore the default scenario configuration) is byte-identical to the
pre-workload-subsystem trajectories: the hashes below were captured from
the repository *before* ``repro.workloads`` existed.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.caching_mdp import MDPCachingPolicy
from repro.core.lyapunov import LyapunovServiceController
from repro.net.content import ContentCatalog
from repro.net.requests import BernoulliArrivals, PoissonArrivals, RequestGenerator
from repro.net.topology import RoadTopology
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import CacheSimulator, JointSimulator, ServiceSimulator
from repro.workloads import WorkloadSpec, create_workload, workload_names

#: Synthetic model specs (with parameters chosen so dynamics actually kick
#: in within a short horizon) reused across the behavioural tests.
SYNTHETIC_SPECS = [
    "stationary",
    "drift:period=10,step=0.6",
    "flash-crowd:burst_prob=0.3,duration=5",
    "shot-noise:event_rate=0.2,mean_lifetime=8",
]


@pytest.fixture
def topology():
    return RoadTopology(8, 4)


@pytest.fixture
def catalog():
    return ContentCatalog.random(8, rng=1)


def build(spec_text, topology, catalog, *, rng=7, rate=0.9):
    return create_workload(
        spec_text,
        topology,
        catalog,
        arrivals=BernoulliArrivals(rate),
        rng=rng,
    )


class TestGoldenStationaryFingerprints:
    """Pins: default workload == the pre-PR-3 trajectories, byte for byte."""

    def test_request_stream_fingerprint(self):
        topology = RoadTopology(20, 5)
        catalog = ContentCatalog.random(20, rng=3)
        generator = RequestGenerator(
            topology, catalog, arrivals=PoissonArrivals(1.5), rng=42
        )
        trace = generator.generate_trace(50)
        blob = ",".join(
            f"{r.time_slot}:{r.rsu_id}:{r.content_id}" for r in trace
        )
        assert len(trace) == 364
        assert (
            hashlib.sha256(blob.encode()).hexdigest()
            == "184ed55609018bfd113d97c6428200df36ffe8875a7c0ae87b207e1b1302bf3d"
        )

    def test_service_simulator_fingerprint(self):
        config = ScenarioConfig.fig1b(seed=0).with_overrides(num_slots=120)
        result = ServiceSimulator(
            config, LyapunovServiceController(config.tradeoff_v)
        ).run()
        latency = result.metrics.latency_history()
        assert (
            hashlib.sha256(latency.tobytes()).hexdigest()
            == "c84f3796255bbb9a90930a093b47b9ec2d0eefbdbb0649dd4e9137519b96c971"
        )

    def test_cache_simulator_fingerprint(self):
        config = ScenarioConfig.fig1a(seed=0).with_overrides(num_slots=80)
        result = CacheSimulator(
            config, MDPCachingPolicy(config.build_mdp_config())
        ).run()
        assert (
            hashlib.sha256(np.asarray(result.cumulative_reward).tobytes()).hexdigest()
            == "84fc19088eaf597ec4c2481bd08f8bb90d103d7418cbafe4effb57a32bd24b49"
        )

    def test_joint_simulator_fingerprint(self):
        config = ScenarioConfig.small(seed=7, num_slots=60, arrival_rate=0.8)
        result = JointSimulator(
            config,
            MDPCachingPolicy(config.build_mdp_config()),
            LyapunovServiceController(config.tradeoff_v),
        ).run()
        assert result.service_metrics.total_served == 99
        assert repr(result.cache_metrics.reward.total_reward) == "140.25699190778818"

    def test_explicit_stationary_spec_matches_default(self):
        config = ScenarioConfig.small(seed=3, num_slots=40, arrival_rate=0.9)
        explicit = config.with_overrides(workload="stationary")
        a = ServiceSimulator(config, LyapunovServiceController(5.0)).run()
        b = ServiceSimulator(explicit, LyapunovServiceController(5.0)).run()
        assert np.array_equal(
            a.metrics.latency_history(), b.metrics.latency_history()
        )
        assert a.summary() == b.summary()

    def test_stationary_model_matches_request_generator_draws(self, topology, catalog):
        generator = RequestGenerator(
            topology, catalog, arrivals=BernoulliArrivals(0.9), rng=11
        )
        model = build("stationary", topology, catalog, rng=11)
        for t in range(30):
            expected = generator.generate_slot_contents(t)
            actual = model.generate_slot_contents(t)
            assert len(expected) == len(actual)
            for (r1, c1), (r2, c2) in zip(expected, actual):
                assert r1 == r2
                assert np.array_equal(c1, c2)


class TestHorizonEquivalence:
    @pytest.mark.parametrize("spec_text", SYNTHETIC_SPECS)
    def test_generate_horizon_replays_per_slot_draws(
        self, spec_text, topology, catalog
    ):
        horizon = build(spec_text, topology, catalog).generate_horizon(40)
        sequential = build(spec_text, topology, catalog)
        for t in range(40):
            expected = sequential.generate_slot_contents(t)
            actual = horizon.slot_batches(t)
            assert len(expected) == len(actual), (spec_text, t)
            for (r1, c1), (r2, c2) in zip(expected, actual):
                assert r1 == r2
                assert np.array_equal(c1, c2)

    @pytest.mark.parametrize("spec_text", SYNTHETIC_SPECS)
    def test_horizon_matches_generate_slot_requests(
        self, spec_text, topology, catalog
    ):
        horizon = build(spec_text, topology, catalog).generate_horizon(40)
        sequential = build(spec_text, topology, catalog)
        for t in range(40):
            requests = sequential.generate_slot(t)
            flat = [
                (rsu_id, int(content_id))
                for rsu_id, content_ids in horizon.slot_batches(t)
                for content_id in content_ids
            ]
            assert [(r.rsu_id, r.content_id) for r in requests] == flat

    def test_horizon_out_of_range_rejected(self, topology, catalog):
        horizon = build("stationary", topology, catalog).generate_horizon(10)
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            horizon.slot_batches(10)
        with pytest.raises(ValidationError):
            horizon.slot_batches(-1)

    def test_horizon_counts_match_batches(self, topology, catalog):
        horizon = build("stationary", topology, catalog).generate_horizon(25)
        counts = horizon.counts()
        assert counts.shape == (25, topology.num_rsus)
        assert counts.sum() == horizon.total_requests

    def test_same_seed_same_horizon_different_seed_differs(self, topology, catalog):
        a = build("drift:period=5", topology, catalog, rng=1).generate_horizon(60)
        b = build("drift:period=5", topology, catalog, rng=1).generate_horizon(60)
        c = build("drift:period=5", topology, catalog, rng=2).generate_horizon(60)
        assert np.array_equal(a.content_ids, b.content_ids)
        assert not (
            a.total_requests == c.total_requests
            and np.array_equal(a.content_ids, c.content_ids)
        )


class TestDriftWorkload:
    def test_weights_static_before_first_period(self, topology, catalog):
        model = build("drift:period=10,step=0.8", topology, catalog)
        base = model.base_popularity(0)
        for t in range(10):
            model.generate_slot_contents(t)
            assert np.array_equal(model._weights(0, t), base)

    def test_weights_shift_at_period_boundaries(self, topology, catalog):
        model = build("drift:period=10,step=0.8", topology, catalog)
        base = model.base_popularity(0)
        for t in range(15):
            model.generate_slot_contents(t)
        shifted = model._weights(0, 14)
        assert not np.array_equal(shifted, base)
        assert shifted.sum() == pytest.approx(1.0)
        assert (shifted >= 0).all()

    def test_content_population_reports_base_profile(self, topology, catalog):
        model = build("drift:period=5,step=0.8", topology, catalog)
        before = model.content_population(0)
        for t in range(20):
            model.generate_slot_contents(t)
        assert model.content_population(0) == before


class TestFlashCrowdWorkload:
    def test_burst_concentrates_mass_on_hot_content(self, topology, catalog):
        model = build(
            "flash-crowd:burst_prob=1.0,duration=3,concentration=0.9",
            topology,
            catalog,
        )
        model.generate_slot_contents(0)
        weights = model._weights(0, 0)
        assert weights.max() >= 0.9
        assert weights.sum() == pytest.approx(1.0)
        assert model.hot_content(0) is not None

    def test_hot_content_visible_through_the_bursts_last_slot(
        self, topology, catalog
    ):
        # duration=1 bursts are active exactly in the slot they fire; the
        # accessor must report them (regression: off-by-one vs the cursor).
        model = build(
            "flash-crowd:burst_prob=1.0,duration=1,concentration=0.9",
            topology,
            catalog,
        )
        for t in range(5):
            model.generate_slot_contents(t)
            assert model.hot_content(0) is not None, t

    def test_burst_expires_back_to_base(self, topology, catalog):
        model = build(
            "flash-crowd:burst_prob=0.0,duration=2", topology, catalog
        )
        base = model.base_popularity(0)
        for t in range(5):
            model.generate_slot_contents(t)
        assert np.array_equal(model._weights(0, 4), base)
        assert model.hot_content(0) is None


class TestShotNoiseWorkload:
    def test_active_shot_boosts_weight_then_decays(self, topology, catalog):
        model = build(
            "shot-noise:event_rate=1.0,mean_lifetime=3,boost=10",
            topology,
            catalog,
        )
        model.generate_slot_contents(0)
        weights = model._weights(0, 0)
        base = model.base_popularity(0)
        assert weights.max() > base.max()
        assert weights.sum() == pytest.approx(1.0)
        assert model.active_contents(0).size >= 1

    def test_no_events_keeps_base_popularity(self, topology, catalog):
        model = build("shot-noise:event_rate=0.0", topology, catalog)
        base = model.base_popularity(0)
        for t in range(10):
            model.generate_slot_contents(t)
        assert np.array_equal(model._weights(0, 9), base)
        assert model.active_contents(0).size == 0


class TestWorkloadSweepOutcomes:
    def test_non_stationary_workloads_change_the_service_trajectory(self):
        config = ScenarioConfig.fig1b(seed=0).with_overrides(num_slots=150)
        histories = {}
        for spec_text in SYNTHETIC_SPECS:
            scenario = config.with_overrides(workload=spec_text)
            result = ServiceSimulator(
                scenario, LyapunovServiceController(scenario.tradeoff_v)
            ).run()
            histories[spec_text] = result.metrics.latency_history()
        stationary = histories.pop("stationary")
        changed = [
            not np.array_equal(history, stationary)
            for history in histories.values()
        ]
        # The non-stationary models perturb the RNG stream and the weights;
        # at least two of the three must visibly diverge from stationary.
        assert sum(changed) >= 2

    def test_every_registered_workload_name_is_exercised(self):
        assert set(workload_names()) == {
            "stationary",
            "drift",
            "flash-crowd",
            "shot-noise",
            "trace",
        }
