"""Cross-mode equivalence: every registered workload, every execution mode.

For each registered workload model the three simulator execution modes —
scalar ``reference=True``, vectorised (default), and seed-batched
``run_batch(seeds)`` — must produce bit-identical trajectories (exact
equality, no tolerances).  This extends the PR 1/PR 2 golden-trajectory
contracts to the workload axis: a workload model that drew RNG variates
differently in any mode would fail here immediately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.caching_mdp import MDPCachingPolicy
from repro.core.lyapunov import LyapunovServiceController
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import CacheSimulator, JointSimulator, ServiceSimulator
from repro.workloads import export_trace, workload_names

SEEDS = [0, 3, 11]

#: Parameters per registered model chosen so dynamics fire within the short
#: test horizons.  ``trace`` is exercised separately (it needs a file).
SYNTHETIC_WORKLOADS = [
    "stationary",
    "drift:period=8,step=0.6",
    "flash-crowd:burst_prob=0.25,duration=6",
    "shot-noise:event_rate=0.2,mean_lifetime=10",
]


def test_suite_covers_every_registered_workload():
    covered = {spec.split(":")[0] for spec in SYNTHETIC_WORKLOADS} | {"trace"}
    assert covered == set(workload_names())


def trace_spec(tmp_path, config, num_slots):
    """Export the scenario's own workload and return a trace spec replaying it."""
    from repro.sim.simulator import _SystemState

    path = tmp_path / "workload.jsonl"
    state = _SystemState(config)
    export_trace(state.workload, num_slots, str(path))
    return f"trace:path={path}"


def assert_service_modes_identical(config, num_slots):
    def policy(cfg):
        return LyapunovServiceController(cfg.tradeoff_v)

    reference = ServiceSimulator(config, policy(config), reference=True).run(
        num_slots=num_slots
    )
    vectorized = ServiceSimulator(config, policy(config)).run(num_slots=num_slots)
    for history in ("backlog_history", "latency_history", "cost_history"):
        assert np.array_equal(
            getattr(reference.metrics, history)(),
            getattr(vectorized.metrics, history)(),
        ), history
    assert reference.summary() == vectorized.summary()

    singles = [
        ServiceSimulator(
            config.with_overrides(seed=seed),
            policy(config.with_overrides(seed=seed)),
        ).run(num_slots=num_slots)
        for seed in SEEDS
    ]
    batch = ServiceSimulator(config, policy(config)).run_batch(
        SEEDS,
        policies=[policy(config.with_overrides(seed=seed)) for seed in SEEDS],
        num_slots=num_slots,
    )
    for single, batched in zip(singles, batch):
        for history in ("backlog_history", "latency_history", "cost_history"):
            assert np.array_equal(
                getattr(single.metrics, history)(),
                getattr(batched.metrics, history)(),
            ), history
        assert single.summary() == batched.summary()


def assert_joint_modes_identical(config, num_slots):
    def policies(cfg):
        return (
            MDPCachingPolicy(cfg.build_mdp_config()),
            LyapunovServiceController(cfg.tradeoff_v),
        )

    reference = JointSimulator(config, *policies(config), reference=True).run(
        num_slots=num_slots
    )
    vectorized = JointSimulator(config, *policies(config)).run(num_slots=num_slots)
    assert np.array_equal(
        reference.cache_metrics.age_matrix_history(),
        vectorized.cache_metrics.age_matrix_history(),
    )
    assert np.array_equal(
        reference.service_metrics.latency_history(),
        vectorized.service_metrics.latency_history(),
    )
    assert reference.summary() == vectorized.summary()

    singles = [
        JointSimulator(
            config.with_overrides(seed=seed),
            *policies(config.with_overrides(seed=seed)),
        ).run(num_slots=num_slots)
        for seed in SEEDS
    ]
    batch = JointSimulator(config, *policies(config)).run_batch(
        SEEDS,
        caching_policies=[
            policies(config.with_overrides(seed=seed))[0] for seed in SEEDS
        ],
        service_policies=[
            policies(config.with_overrides(seed=seed))[1] for seed in SEEDS
        ],
        num_slots=num_slots,
    )
    for single, batched in zip(singles, batch):
        assert np.array_equal(
            single.cache_metrics.action_matrix_history(),
            batched.cache_metrics.action_matrix_history(),
        )
        assert np.array_equal(
            single.service_metrics.backlog_history(),
            batched.service_metrics.backlog_history(),
        )
        assert single.summary() == batched.summary()


def assert_cache_modes_identical(config, num_slots):
    def policy(cfg):
        return MDPCachingPolicy(cfg.build_mdp_config())

    reference = CacheSimulator(config, policy(config), reference=True).run(
        num_slots=num_slots
    )
    vectorized = CacheSimulator(config, policy(config)).run(num_slots=num_slots)
    assert np.array_equal(
        reference.metrics.age_matrix_history(),
        vectorized.metrics.age_matrix_history(),
    )
    assert reference.summary() == vectorized.summary()

    batch = CacheSimulator(config, policy(config)).run_batch(
        SEEDS,
        policies=[policy(config.with_overrides(seed=seed)) for seed in SEEDS],
        num_slots=num_slots,
    )
    singles = [
        CacheSimulator(
            config.with_overrides(seed=seed),
            policy(config.with_overrides(seed=seed)),
        ).run(num_slots=num_slots)
        for seed in SEEDS
    ]
    for single, batched in zip(singles, batch):
        assert np.array_equal(
            single.metrics.age_matrix_history(),
            batched.metrics.age_matrix_history(),
        )
        assert single.summary() == batched.summary()


class TestServiceCrossMode:
    @pytest.mark.parametrize("workload", SYNTHETIC_WORKLOADS)
    def test_synthetic_workloads(self, workload):
        config = ScenarioConfig.fig1b(seed=0).with_overrides(
            num_slots=80, workload=workload
        )
        assert_service_modes_identical(config, 80)

    @pytest.mark.parametrize("workload", SYNTHETIC_WORKLOADS[1:3])
    def test_poisson_arrivals_and_deadlines(self, workload):
        config = ScenarioConfig.fig1b(seed=6).with_overrides(
            num_slots=60,
            deadline_slots=4,
            arrival_kind="poisson",
            arrival_rate=2.0,
            workload=workload,
        )
        assert_service_modes_identical(config, 60)

    def test_trace_replay(self, tmp_path):
        base = ScenarioConfig.fig1b(seed=0).with_overrides(num_slots=60)
        config = base.with_overrides(workload=trace_spec(tmp_path, base, 60))
        assert_service_modes_identical(config, 60)


class TestJointCrossMode:
    @pytest.mark.parametrize("workload", SYNTHETIC_WORKLOADS)
    def test_synthetic_workloads(self, workload):
        config = ScenarioConfig.small(
            seed=7, num_slots=60, arrival_rate=0.8, workload=workload
        )
        assert_joint_modes_identical(config, 60)

    def test_trace_replay(self, tmp_path):
        base = ScenarioConfig.small(seed=5, num_slots=50, arrival_rate=0.9)
        config = base.with_overrides(workload=trace_spec(tmp_path, base, 50))
        assert_joint_modes_identical(config, 50)


class TestCacheCrossMode:
    @pytest.mark.parametrize("workload", SYNTHETIC_WORKLOADS)
    def test_synthetic_workloads(self, workload):
        # The cache stage consumes the workload only through its (base)
        # content population, but the full mode matrix must still agree.
        config = ScenarioConfig.fig1a(seed=0).with_overrides(
            num_slots=50, workload=workload
        )
        assert_cache_modes_identical(config, 50)
