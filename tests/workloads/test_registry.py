"""Tests for the workload registry and ``WorkloadSpec`` validation."""

from __future__ import annotations

import copy
import pickle

import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.net.content import ContentCatalog
from repro.net.requests import BernoulliArrivals
from repro.net.topology import RoadTopology
from repro.workloads import (
    StationaryWorkload,
    WorkloadModel,
    WorkloadSpec,
    available_workloads,
    create_workload,
    get_workload_class,
    workload_names,
)

EXPECTED_NAMES = ["drift", "flash-crowd", "shot-noise", "stationary", "trace"]


@pytest.fixture
def topology():
    return RoadTopology(8, 4)


@pytest.fixture
def catalog():
    return ContentCatalog.random(8, rng=1)


class TestRegistry:
    def test_all_models_registered(self):
        assert workload_names() == EXPECTED_NAMES

    def test_available_workloads_have_descriptions(self):
        descriptions = available_workloads()
        assert sorted(descriptions) == EXPECTED_NAMES
        assert all(text for text in descriptions.values())

    def test_get_workload_class_resolves(self):
        assert get_workload_class("stationary") is StationaryWorkload

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            get_workload_class("nope")

    def test_registered_classes_are_workload_models(self):
        for name in workload_names():
            assert issubclass(get_workload_class(name), WorkloadModel)


class TestWorkloadSpec:
    def test_default_is_stationary(self):
        spec = WorkloadSpec()
        assert spec.name == "stationary"
        assert spec.is_default

    def test_parse_name_only(self):
        assert WorkloadSpec.parse("drift").name == "drift"

    def test_parse_with_params(self):
        spec = WorkloadSpec.parse("drift:period=10,step=0.25")
        assert spec.params_dict == {"period": 10, "step": 0.25}

    def test_parse_coerces_value_types(self):
        spec = WorkloadSpec.parse("flash-crowd:burst_prob=0.5,duration=3")
        params = spec.params_dict
        assert isinstance(params["burst_prob"], float)
        assert isinstance(params["duration"], int)

    def test_defaults_filled_in(self):
        spec = WorkloadSpec.parse("drift:period=10")
        assert spec.params_dict["step"] == 0.5

    def test_label_hides_defaults(self):
        assert WorkloadSpec.parse("drift").label() == "drift"
        assert WorkloadSpec.parse("drift:period=10").label() == "drift(period=10)"

    def test_coerce_accepts_none_string_and_spec(self):
        assert WorkloadSpec.coerce(None) == WorkloadSpec()
        assert WorkloadSpec.coerce("drift").name == "drift"
        spec = WorkloadSpec.parse("drift:period=10")
        assert WorkloadSpec.coerce(spec) is spec
        with pytest.raises(ConfigurationError):
            WorkloadSpec.coerce(3.5)

    def test_param_order_does_not_matter(self):
        a = WorkloadSpec.parse("drift:period=10,step=0.25")
        b = WorkloadSpec.parse("drift:step=0.25,period=10")
        assert a == b

    def test_unknown_name_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            WorkloadSpec.parse("bogus")

    def test_unknown_parameter_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            WorkloadSpec.parse("drift:perriod=10")

    def test_stationary_takes_no_parameters(self):
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            WorkloadSpec.parse("stationary:rate=2")

    def test_malformed_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            WorkloadSpec.parse("drift:period")
        with pytest.raises(ConfigurationError, match="non-empty"):
            WorkloadSpec.parse("")

    @pytest.mark.parametrize(
        "text",
        [
            "drift:period=0",
            "drift:period=-3",
            "drift:step=0",
            "drift:step=-1.0",
            "flash-crowd:burst_prob=1.5",
            "flash-crowd:burst_prob=-0.1",
            "flash-crowd:duration=0",
            "flash-crowd:concentration=2",
            "shot-noise:event_rate=2",
            "shot-noise:mean_lifetime=0",
            "shot-noise:boost=0.5",
            "trace:path=",
            "trace",
        ],
    )
    def test_invalid_knob_values_rejected(self, text):
        with pytest.raises((ConfigurationError, ValidationError)):
            WorkloadSpec.parse(text)

    def test_spec_is_picklable_and_copyable(self):
        spec = WorkloadSpec.parse("shot-noise:event_rate=0.1")
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert copy.deepcopy(spec) == spec


class TestCreateWorkload:
    def test_builds_every_synthetic_model(self, topology, catalog):
        for name in ("stationary", "drift", "flash-crowd", "shot-noise"):
            model = create_workload(
                name,
                topology,
                catalog,
                arrivals=BernoulliArrivals(0.5),
                rng=0,
            )
            assert isinstance(model, get_workload_class(name))
            assert model.workload_name == name

    def test_spec_build_passes_parameters(self, topology, catalog):
        model = create_workload(
            "drift:period=7", topology, catalog, rng=0
        )
        assert model._period == 7  # noqa: SLF001 - white-box check
