"""Trace export/replay round trips and trace-file error handling."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.lyapunov import LyapunovServiceController
from repro.exceptions import ConfigurationError, ValidationError
from repro.net.content import ContentCatalog
from repro.net.requests import BernoulliArrivals
from repro.net.topology import RoadTopology
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import ServiceSimulator
from repro.workloads import (
    TraceWorkload,
    create_workload,
    export_trace,
    read_trace,
    write_trace,
)


@pytest.fixture
def topology():
    return RoadTopology(8, 4)


@pytest.fixture
def catalog():
    return ContentCatalog.random(8, rng=1)


def build(spec_text, topology, catalog, *, rng=3):
    return create_workload(
        spec_text, topology, catalog, arrivals=BernoulliArrivals(0.9), rng=rng
    )


def assert_same_slots(expected_model, replay, num_slots):
    for t in range(num_slots):
        expected = expected_model.generate_slot_contents(t)
        actual = replay.generate_slot_contents(t)
        assert len(expected) == len(actual), t
        for (r1, c1), (r2, c2) in zip(expected, actual):
            assert r1 == r2
            assert np.array_equal(c1, c2)


class TestRoundTrip:
    @pytest.mark.parametrize("extension", ["jsonl", "csv"])
    def test_file_round_trip(self, tmp_path, topology, catalog, extension):
        path = str(tmp_path / f"trace.{extension}")
        model = build("drift:period=10", topology, catalog)
        written = export_trace(model, 30, path)
        records, declared = read_trace(path)
        assert len(records) == written
        if extension == "jsonl":
            assert declared == 30
        replay = create_workload(f"trace:path={path}", topology, catalog)
        assert_same_slots(build("drift:period=10", topology, catalog), replay, 30)

    @pytest.mark.parametrize(
        "spec_text",
        ["stationary", "flash-crowd:burst_prob=0.3,duration=4",
         "shot-noise:event_rate=0.2"],
    )
    def test_every_synthetic_model_replays(self, tmp_path, topology, catalog, spec_text):
        path = str(tmp_path / "trace.jsonl")
        export_trace(build(spec_text, topology, catalog), 25, path)
        replay = create_workload(f"trace:path={path}", topology, catalog)
        assert_same_slots(build(spec_text, topology, catalog), replay, 25)

    def test_replayed_trace_reproduces_simulator_metrics(self, tmp_path):
        # Export the fig1b workload, replay it, and require the *identical*
        # service metrics — the acceptance criterion of the trace model.
        from repro.sim.simulator import _SystemState

        config = ScenarioConfig.fig1b(seed=0).with_overrides(num_slots=80)
        path = str(tmp_path / "fig1b.jsonl")
        export_trace(_SystemState(config).workload, 80, path)
        direct = ServiceSimulator(
            config, LyapunovServiceController(config.tradeoff_v)
        ).run()
        replayed = ServiceSimulator(
            config.with_overrides(workload=f"trace:path={path}"),
            LyapunovServiceController(config.tradeoff_v),
        ).run()
        assert np.array_equal(
            direct.metrics.latency_history(), replayed.metrics.latency_history()
        )
        assert np.array_equal(
            direct.metrics.backlog_history(), replayed.metrics.backlog_history()
        )
        assert direct.summary() == replayed.summary()

    def test_empirical_popularity_reflects_the_trace(self, tmp_path, topology, catalog):
        path = str(tmp_path / "trace.jsonl")
        hot = topology.rsus[0].covered_regions[0]
        requests = build("stationary", topology, catalog).generate_trace(10)
        write_trace(path, requests, num_slots=10)
        replay = create_workload(f"trace:path={path}", topology, catalog)
        population = replay.content_population(0)
        total = sum(
            1 for r in requests if r.rsu_id == 0
        )
        if total:
            expected = (
                sum(1 for r in requests if r.rsu_id == 0 and r.content_id == hot)
                / total
            )
            assert population[hot] == pytest.approx(expected)


class TestTraceErrors:
    def test_missing_file_rejected(self, topology, catalog):
        with pytest.raises(ConfigurationError, match="not found"):
            create_workload("trace:path=/does/not/exist.jsonl", topology, catalog)

    def test_beyond_horizon_rejected(self, tmp_path, topology, catalog):
        path = str(tmp_path / "trace.jsonl")
        export_trace(build("stationary", topology, catalog), 10, path)
        replay = create_workload(f"trace:path={path}", topology, catalog)
        assert replay.trace_slots == 10
        with pytest.raises(ValidationError, match="beyond the trace horizon"):
            replay.generate_slot_contents(10)

    def test_num_slots_override_extends_with_empty_slots(
        self, tmp_path, topology, catalog
    ):
        path = str(tmp_path / "trace.jsonl")
        export_trace(build("stationary", topology, catalog), 10, path)
        replay = create_workload(
            f"trace:path={path},num_slots=15", topology, catalog
        )
        assert replay.trace_slots == 15
        assert replay.generate_slot_contents(14) == []

    def test_unknown_rsu_rejected(self, tmp_path, topology, catalog):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"t": 0, "rsu": 99, "content": 0}) + "\n")
        with pytest.raises(ConfigurationError, match="unknown rsu_id"):
            create_workload(f"trace:path={path}", topology, catalog)

    def test_foreign_content_rejected(self, tmp_path, topology, catalog):
        foreign = topology.rsus[1].covered_regions[0]
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"t": 0, "rsu": 0, "content": foreign}) + "\n")
        with pytest.raises(ConfigurationError, match="not cached"):
            create_workload(f"trace:path={path}", topology, catalog)

    def test_malformed_json_rejected(self, tmp_path, topology, catalog):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ConfigurationError, match="malformed"):
            create_workload(f"trace:path={path}", topology, catalog)

    def test_empty_file_without_horizon_rejected(self, tmp_path, topology, catalog):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError, match="empty"):
            create_workload(f"trace:path={path}", topology, catalog)

    def test_unknown_extension_needs_explicit_format(self, tmp_path, topology, catalog):
        path = tmp_path / "trace.dat"
        path.write_text("")
        with pytest.raises(ConfigurationError, match="cannot infer"):
            create_workload(f"trace:path={path}", topology, catalog)

    def test_out_of_order_slots_are_stably_sorted(self, tmp_path, topology, catalog):
        first = topology.rsus[0].covered_regions[0]
        second = topology.rsus[0].covered_regions[1]
        path = tmp_path / "shuffled.jsonl"
        path.write_text(
            "\n".join(
                json.dumps(row)
                for row in [
                    {"t": 1, "rsu": 0, "content": second},
                    {"t": 0, "rsu": 0, "content": first},
                    {"t": 1, "rsu": 0, "content": first},
                ]
            )
            + "\n"
        )
        replay = create_workload(f"trace:path={path}", topology, catalog)
        slot0 = replay.generate_slot_contents(0)
        slot1 = replay.generate_slot_contents(1)
        assert [int(c) for _, ids in slot0 for c in ids] == [first]
        assert [int(c) for _, ids in slot1 for c in ids] == [second, first]
