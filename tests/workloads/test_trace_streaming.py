"""Lazy streaming replay of :class:`TraceWorkload`: bounded memory,
reorder windows, and backward access.

The replay must never materialise the trace: the internal buffer stays
within the file's measured slot disorder, sequential access streams
forward, and backward jumps reopen the file — all while producing
exactly the batches a materialised read would.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.net.content import ContentCatalog
from repro.net.requests import BernoulliArrivals
from repro.net.topology import RoadTopology
from repro.workloads import create_workload
from repro.workloads.codec import group_record_batches
from repro.workloads.trace import read_trace


@pytest.fixture
def topology():
    return RoadTopology(8, 4)


@pytest.fixture
def catalog():
    return ContentCatalog.random(8, rng=1)


def content_for(topology, rsu_id, index=0):
    """The *index*-th content actually placed on RSU *rsu_id*."""
    contents = sorted(topology.rsus[rsu_id].covered_regions)
    return int(contents[index % len(contents)])


def build_trace(path, topology, slots_rsus, num_slots=None):
    """Write a JSONL trace of ``(t, rsu)`` pairs with valid contents."""
    with open(path, "w", encoding="utf-8") as handle:
        if num_slots is not None:
            handle.write(json.dumps({"meta": {"num_slots": num_slots}}) + "\n")
        for index, (t, rsu) in enumerate(slots_rsus):
            content = content_for(topology, rsu, index)
            handle.write(
                json.dumps({"t": t, "rsu": rsu, "content": content}) + "\n"
            )


def replay_workload(path, topology, catalog, **params):
    spec = "trace:path=" + path
    if params:
        spec += "," + ",".join(f"{k}={v}" for k, v in params.items())
    return create_workload(
        spec, topology, catalog, arrivals=BernoulliArrivals(0.9), rng=3
    )


def expected_batches(path, time_slot, num_slots=None):
    records, _ = read_trace(path)
    pairs = [
        (rsu, content)
        for t, rsu, content in records
        if t == time_slot and (num_slots is None or t < num_slots)
    ]
    return group_record_batches(pairs)


def assert_batches_equal(actual, expected):
    assert len(actual) == len(expected)
    for (rsu_a, contents_a), (rsu_e, contents_e) in zip(actual, expected):
        assert rsu_a == rsu_e
        assert np.array_equal(contents_a, contents_e)


class TestStreamingReplay:
    def test_sorted_trace_has_zero_reorder_window(self, tmp_path, topology, catalog):
        path = str(tmp_path / "sorted.jsonl")
        build_trace(path, topology, [(0, 0), (1, 1), (3, 0)], num_slots=5)
        replay = replay_workload(path, topology, catalog)
        assert replay._window == 0

    def test_disorder_is_measured_not_assumed(self, tmp_path, topology, catalog):
        path = str(tmp_path / "messy.jsonl")
        # Slot 0 trails slot 3: the reorder window must be 3.
        build_trace(path, topology, [(3, 0), (0, 1), (2, 0), (1, 0)])
        replay = replay_workload(path, topology, catalog)
        assert replay._window == 3
        for t in range(replay.trace_slots):
            assert_batches_equal(
                replay.generate_slot_contents(t), expected_batches(path, t)
            )

    def test_buffer_stays_within_the_reorder_window(self, tmp_path, topology, catalog):
        # A long sorted trace: after each slot, the replay buffer must
        # hold at most the window's worth of future slots — streaming,
        # not materialising.
        path = str(tmp_path / "long.jsonl")
        build_trace(path, topology, [(t, t % 4) for t in range(500)])
        replay = replay_workload(path, topology, catalog)
        for t in range(replay.trace_slots):
            replay.generate_slot_contents(t)
            assert len(replay._buffer) <= replay._window + 1

    def test_backward_access_reopens_and_matches(self, tmp_path, topology, catalog):
        path = str(tmp_path / "trace.jsonl")
        build_trace(
            path, topology, [(0, 0), (1, 1), (2, 0), (2, 1), (4, 0)], num_slots=6
        )
        replay = replay_workload(path, topology, catalog)
        forward = [replay.generate_slot_contents(t) for t in range(6)]
        # Jump backwards (reopens the file), then spot-check random order.
        for t in (2, 0, 4, 1, 5, 3):
            assert_batches_equal(replay.generate_slot_contents(t), forward[t])

    def test_repeated_same_slot_access(self, tmp_path, topology, catalog):
        path = str(tmp_path / "trace.jsonl")
        build_trace(path, topology, [(0, 0), (1, 1)], num_slots=3)
        replay = replay_workload(path, topology, catalog)
        first = replay.generate_slot_contents(1)
        again = replay.generate_slot_contents(1)
        assert_batches_equal(again, first)

    def test_num_slots_truncation_drops_tail_records(self, tmp_path, topology, catalog):
        path = str(tmp_path / "trace.jsonl")
        build_trace(path, topology, [(0, 0), (1, 1), (7, 0)])
        replay = replay_workload(path, topology, catalog, num_slots=2)
        assert replay.trace_slots == 2
        for t in range(2):
            assert_batches_equal(
                replay.generate_slot_contents(t), expected_batches(path, t)
            )

    def test_generate_horizon_matches_slotwise_access(self, tmp_path, topology, catalog):
        path = str(tmp_path / "trace.jsonl")
        build_trace(path, topology, [(1, 0), (0, 1), (3, 0), (2, 1)], num_slots=4)
        replay = replay_workload(path, topology, catalog)
        horizon = replay.generate_horizon(4)
        for t in range(4):
            assert_batches_equal(
                horizon.slot_batches(t), replay.generate_slot_contents(t)
            )

    def test_mean_load_counts_only_replayed_records(self, tmp_path, topology, catalog):
        path = str(tmp_path / "trace.jsonl")
        build_trace(path, topology, [(0, 0), (1, 1), (7, 0)])
        replay = replay_workload(path, topology, catalog, num_slots=2)
        assert replay.mean_load_per_rsu == pytest.approx(
            2 / (2 * topology.num_rsus)
        )
