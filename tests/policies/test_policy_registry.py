"""Tests for repro.policies (the policy registry and PolicySpec)."""

from __future__ import annotations

import pickle

import pytest

from repro.baselines.caching import ThresholdUpdatePolicy
from repro.core.caching_mdp import MDPCachingPolicy
from repro.core.lyapunov import LyapunovServiceController
from repro.exceptions import ConfigurationError
from repro.policies import (
    PolicySpec,
    available_policies,
    create_policy,
    get_policy_entry,
    list_policies,
    register_policy,
)
from repro.sim.scenario import ScenarioConfig


class TestCatalog:
    EXPECTED_CACHING = {
        "always", "mdp", "myopic", "never", "periodic", "random", "threshold",
    }
    EXPECTED_SERVICE = {
        "always-serve", "backlog-threshold", "cost-greedy",
        "fixed-probability", "lyapunov", "never-serve",
    }

    EXPECTED_ONPATH = {
        "cl4m", "edge", "lcd", "lce", "partition", "probcache",
    }

    def test_every_builtin_policy_is_registered(self):
        assert set(list_policies("caching")) == self.EXPECTED_CACHING
        assert set(list_policies("service")) == self.EXPECTED_SERVICE
        assert set(list_policies("onpath")) == self.EXPECTED_ONPATH
        assert set(list_policies()) == (
            self.EXPECTED_CACHING | self.EXPECTED_SERVICE | self.EXPECTED_ONPATH
        )

    def test_available_policies_have_descriptions(self):
        for name, description in available_policies().items():
            assert description, name

    def test_unknown_name_error_lists_registered(self):
        with pytest.raises(ConfigurationError, match="unknown policy 'nope'"):
            get_policy_entry("nope")
        with pytest.raises(ConfigurationError, match="mdp"):
            PolicySpec("nope")

    def test_bad_role_rejected(self):
        with pytest.raises(ConfigurationError, match="role"):
            list_policies("neither")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):

            @register_policy("mdp", role="caching")
            def duplicate(scenario):  # pragma: no cover - never built
                return None


class TestPolicySpec:
    def test_params_canonicalised_and_order_insensitive(self):
        a = PolicySpec.create("mdp", mode="auto")
        b = PolicySpec("mdp")
        assert a == b
        assert hash(a) == hash(b)
        assert a.canonical_key() == b.canonical_key()

    def test_int_coerced_to_float_default(self):
        # threshold's default is the float 0.8, so integer spellings
        # canonicalise to float and the two specs hash equal.
        a = PolicySpec.parse("threshold:threshold=1")
        b = PolicySpec.create("threshold", threshold=1.0)
        assert a == b
        assert hash(a) == hash(b)
        assert isinstance(dict(a.params)["threshold"], float)

    def test_unknown_parameter_error_names_known(self):
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            PolicySpec.parse("threshold:cutoff=0.5")
        with pytest.raises(ConfigurationError, match="threshold"):
            PolicySpec.parse("threshold:cutoff=0.5")

    def test_malformed_parameter_message(self):
        with pytest.raises(ConfigurationError, match="expected k=v"):
            PolicySpec.parse("mdp:mode")

    def test_role_property_and_coerce_role_check(self):
        assert PolicySpec("mdp").role == "caching"
        assert PolicySpec("lyapunov").role == "service"
        with pytest.raises(ConfigurationError, match="caching policy"):
            PolicySpec.coerce("mdp", role="service")

    def test_label_elides_defaults(self):
        assert PolicySpec("mdp").label() == "mdp"
        assert PolicySpec.parse("mdp:mode=factored").label() == "mdp(mode=factored)"

    def test_to_dict_round_trip(self):
        spec = PolicySpec.parse("cost-greedy:backlog_cap=50")
        assert PolicySpec.from_dict(spec.to_dict()) == spec

    def test_picklable(self):
        spec = PolicySpec.parse("mdp:mode=factored")
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestBuild:
    def test_build_mdp_matches_direct_construction(self, small_config):
        built = PolicySpec("mdp").build(small_config)
        direct = MDPCachingPolicy(small_config.build_mdp_config())
        assert isinstance(built, MDPCachingPolicy)
        assert type(built) is type(direct)

    def test_spec_is_a_callable_factory(self, small_config):
        policy = PolicySpec("threshold")(small_config)
        assert isinstance(policy, ThresholdUpdatePolicy)
        assert policy.threshold == 0.8

    def test_lyapunov_defaults_to_scenario_tradeoff(self):
        scenario = ScenarioConfig.small(tradeoff_v=42.0)
        policy = create_policy("lyapunov", scenario)
        assert isinstance(policy, LyapunovServiceController)
        assert policy.tradeoff_v == 42.0

    def test_lyapunov_explicit_tradeoff_wins(self):
        scenario = ScenarioConfig.small(tradeoff_v=42.0)
        policy = create_policy("lyapunov:tradeoff_v=5", scenario)
        assert policy.tradeoff_v == 5.0

    def test_myopic_defaults_to_scenario_weight(self):
        scenario = ScenarioConfig.small(aoi_weight=3.5)
        policy = create_policy("myopic", scenario)
        assert policy.weight == 3.5

    def test_stochastic_policy_is_deterministic_per_scenario(self, small_config):
        a = create_policy("random", small_config)
        b = create_policy("random", small_config)
        draws_a = [a._rng.random() for _ in range(5)]
        draws_b = [b._rng.random() for _ in range(5)]
        assert draws_a == draws_b

    def test_bad_parameter_value_fails_at_build(self, small_config):
        spec = PolicySpec.parse("threshold:threshold=2.0")
        with pytest.raises(Exception):
            spec.build(small_config)


class TestCustomRegistration:
    def test_registered_factory_round_trips_through_spec(self, small_config):
        @register_policy("test-custom", role="caching")
        def build_custom(scenario, *, cutoff: float = 0.5):
            return ThresholdUpdatePolicy(cutoff)

        try:
            spec = PolicySpec.parse("test-custom:cutoff=0.25")
            policy = spec.build(small_config)
            assert policy.threshold == 0.25
            assert "test-custom" in list_policies("caching")
        finally:
            from repro.policies import registry

            registry._REGISTRY.pop("test-custom", None)

    def test_builder_without_defaults_rejected(self):
        with pytest.raises(ConfigurationError, match="no\\s+default"):

            @register_policy("test-bad", role="caching")
            def build_bad(scenario, knob):  # pragma: no cover - never built
                return None
