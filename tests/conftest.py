"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.caching_mdp import CachingMDPConfig, MDPCachingPolicy
from repro.net.content import ContentCatalog
from repro.net.topology import RoadTopology
from repro.sim.scenario import ScenarioConfig


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_config():
    """A tiny scenario that runs in milliseconds."""
    return ScenarioConfig.small(seed=7)


@pytest.fixture
def fig1a_config():
    """The paper's Fig. 1a scenario with a short horizon for tests."""
    return ScenarioConfig.fig1a(seed=3).with_overrides(num_slots=120)


@pytest.fixture
def fig1b_config():
    """The paper's Fig. 1b scenario with a short horizon for tests."""
    return ScenarioConfig.fig1b(seed=3).with_overrides(num_slots=120)


@pytest.fixture
def small_topology():
    """A 4-region, 2-RSU road."""
    return RoadTopology(4, 2, region_length=100.0)


@pytest.fixture
def small_catalog():
    """A 4-content catalog with heterogeneous maximum ages."""
    return ContentCatalog.heterogeneous([4.0, 6.0, 8.0, 10.0])


@pytest.fixture
def mdp_policy(small_config):
    """An MDP caching policy configured for the small scenario."""
    return MDPCachingPolicy(small_config.build_mdp_config())
