"""Step-equivalence and driving semantics of :mod:`repro.serve.session`.

The core guarantee: a session stepped over a trace's per-slot record
groups produces byte-identical ``summary()`` / ``rows()`` output to an
offline ``simulate()`` over the same trace — for every simulation kind,
and for *any* chunking of the record stream through :meth:`feed`
(hypothesis-checked).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, SimulationError, ValidationError
from repro.serve import SimulationSession, SlotResult, open_session
from repro.sim.engine import simulate
from repro.sim.scenario import ScenarioConfig
from repro.sim.system import SystemState
from repro.workloads.trace import export_trace, read_trace

NUM_SLOTS = 30

KIND_POLICIES = {
    "cache": "mdp",
    "service": "lyapunov",
    "joint": ("myopic", "lyapunov"),
    "multihop": "lce",
}


@pytest.fixture(scope="module")
def trace_env(tmp_path_factory):
    """A trace exported from the small scenario, plus its replay config."""
    base = ScenarioConfig.small(seed=11)
    path = str(tmp_path_factory.mktemp("serve") / "workload.jsonl")
    export_trace(SystemState(base).workload, NUM_SLOTS, path)
    records, declared = read_trace(path)
    assert declared == NUM_SLOTS
    config = base.with_overrides(workload=f"trace:path={path}")
    by_slot = {}
    for time_slot, rsu_id, content_id in records:
        by_slot.setdefault(time_slot, []).append((rsu_id, content_id))
    return config, records, by_slot


class TestStepEquivalence:
    @pytest.mark.parametrize("kind", sorted(KIND_POLICIES))
    def test_stepped_replay_matches_offline_simulate(self, trace_env, kind):
        config, _, by_slot = trace_env
        policies = KIND_POLICIES[kind]
        offline = simulate(config, policies, num_slots=NUM_SLOTS, metrics="summary")
        session = open_session(config, policies)
        assert session.kind == kind
        for time_slot in range(NUM_SLOTS):
            result = session.step(by_slot.get(time_slot, []))
            assert isinstance(result, SlotResult)
            assert result.time_slot == time_slot
        final = session.close()
        assert final.summary() == offline.summary()
        assert final.rows() == offline.rows()

    @pytest.mark.parametrize("kind", sorted(KIND_POLICIES))
    def test_workload_driven_steps_match_offline_simulate(self, trace_env, kind):
        # step(None) draws from the scenario workload — the session is a
        # strict superset of the batch loop even without external records.
        config, _, _ = trace_env
        policies = KIND_POLICIES[kind]
        offline = simulate(config, policies, num_slots=NUM_SLOTS, metrics="summary")
        session = open_session(config, policies)
        for _ in range(NUM_SLOTS):
            session.step()
        assert session.close().summary() == offline.summary()

    def test_full_metrics_mode_matches_too(self, trace_env):
        config, _, by_slot = trace_env
        offline = simulate(
            config, ("myopic", "lyapunov"), num_slots=NUM_SLOTS, metrics="full"
        )
        session = open_session(config, ("myopic", "lyapunov"), metrics="full")
        for time_slot in range(NUM_SLOTS):
            session.step(by_slot.get(time_slot, []))
        assert session.close().summary() == offline.summary()

    @settings(max_examples=20, deadline=None)
    @given(chunks=st.lists(st.integers(min_value=1, max_value=40), max_size=60))
    def test_any_feed_chunking_is_equivalent(self, trace_env, chunks):
        # feed() in arbitrary chunk sizes + close(num_slots) must land on
        # the same trajectory as the offline run, for every chunking.
        config, records, _ = trace_env
        offline = simulate(
            config, ("myopic", "lyapunov"), num_slots=NUM_SLOTS, metrics="summary"
        )
        session = open_session(config, ("myopic", "lyapunov"))
        position = 0
        for size in chunks:
            if position >= len(records):
                break
            session.feed(records[position : position + size])
            position += size
        session.feed(records[position:])
        final = session.close(num_slots=NUM_SLOTS)
        assert final.summary() == offline.summary()
        assert session.dropped == 0 and session.late == 0


class TestSessionSemantics:
    def test_snapshot_reports_progress_and_counters(self, trace_env):
        config, records, by_slot = trace_env
        session = open_session(config, "lyapunov")
        session.step(by_slot.get(0, []))
        snapshot = session.snapshot()
        assert snapshot["kind"] == "service"
        assert snapshot["time_slot"] == 1
        assert snapshot["policy"] == "lyapunov"
        assert snapshot["requests"] == len(by_slot.get(0, []))
        assert snapshot["pending"] == 0
        assert snapshot["dropped"] == 0
        assert snapshot["late"] == 0
        assert snapshot["summary"]["num_slots"] == 1.0
        session.close()

    def test_snapshot_is_a_pure_observation(self, trace_env):
        # Snapshotting mid-run (which flushes staged metric blocks) must
        # not perturb the trajectory.
        config, _, by_slot = trace_env
        offline = simulate(
            config, ("myopic", "lyapunov"), num_slots=NUM_SLOTS, metrics="summary"
        )
        session = open_session(config, ("myopic", "lyapunov"))
        for time_slot in range(NUM_SLOTS):
            session.step(by_slot.get(time_slot, []))
            session.snapshot()
        assert session.close().summary() == offline.summary()

    def test_joint_snapshot_names_both_policies(self, trace_env):
        config, _, _ = trace_env
        session = open_session(config, ("myopic", "lyapunov"))
        policy = session.snapshot()["policy"]
        assert set(policy) == {"caching", "service"}
        session.close()

    def test_late_records_are_counted_and_dropped(self, trace_env):
        config, records, _ = trace_env
        _, rsu_id, content_id = records[0]
        session = open_session(config, "lyapunov")
        # A slot-2 record closes slots 0 and 1 (slot-boundary batching).
        session.feed([(0, rsu_id, content_id), (2, rsu_id, content_id)])
        assert session.time_slot == 2
        session.feed([(1, rsu_id, content_id)])  # already executed
        assert session.late == 1
        session.close()

    def test_backpressure_drops_oldest_and_counts(self, trace_env):
        config, records, _ = trace_env
        _, rsu_id, content_id = records[0]
        session = open_session(config, "lyapunov", max_pending=4)
        session.feed([(0, rsu_id, content_id)] * 6)
        assert session.pending == 4
        assert session.dropped == 2
        completed = session.feed([(1, rsu_id, content_id)])
        assert completed[0].time_slot == 0
        assert completed[0].requests == 4  # the two oldest were shed
        assert session.close(num_slots=5).summary()["num_slots"] == 5

    def test_close_pads_to_the_declared_horizon(self, trace_env):
        config, _, by_slot = trace_env
        session = open_session(config, "lyapunov")
        session.step(by_slot.get(0, []))
        final = session.close(num_slots=NUM_SLOTS)
        assert final.summary()["num_slots"] == NUM_SLOTS

    def test_closed_session_rejects_everything(self, trace_env):
        config, _, _ = trace_env
        session = open_session(config, "lyapunov")
        session.close()
        assert session.closed
        for call in (
            lambda: session.step([]),
            lambda: session.feed([(0, 0, 0)]),
            session.snapshot,
            session.close,
        ):
            with pytest.raises(SimulationError):
                call()

    def test_record_shapes_are_interchangeable(self, trace_env):
        config, records, by_slot = trace_env
        slot0 = by_slot.get(0, [])
        as_pairs = open_session(config, "lyapunov")
        reward_pairs = as_pairs.step(slot0)
        as_dicts = open_session(config, "lyapunov")
        reward_dicts = as_dicts.step(
            [{"rsu": rsu, "content": content} for rsu, content in slot0]
        )
        as_triples = open_session(config, "lyapunov")
        reward_triples = as_triples.step(
            [(0, rsu, content) for rsu, content in slot0]
        )
        assert reward_pairs.metrics == reward_dicts.metrics == reward_triples.metrics

    def test_invalid_records_are_rejected(self, trace_env):
        config, _, _ = trace_env
        session = open_session(config, "lyapunov")
        with pytest.raises(ValidationError, match="unknown rsu_id"):
            session.step([(999, 0)])
        with pytest.raises(ValidationError, match="not cached by RSU"):
            session.step([(0, 10**9)])
        with pytest.raises(ValidationError, match="malformed|must be"):
            session.step([(1,)])
        with pytest.raises(ValidationError, match="time_slot"):
            session.feed([(-1, 0, 0)])
        session.close()


class TestOpenSessionValidation:
    def test_unknown_kind_and_metrics_rejected(self):
        config = ScenarioConfig.small(seed=0)
        with pytest.raises(ConfigurationError, match="kind must be one of"):
            open_session(config, "mdp", kind="nope")
        with pytest.raises(ConfigurationError, match="metrics must be one of"):
            open_session(config, "mdp", metrics="nope")

    def test_kind_mismatch_rejected(self):
        config = ScenarioConfig.small(seed=0)
        with pytest.raises(ConfigurationError, match="does not match"):
            open_session(config, "mdp", kind="service")
        with pytest.raises(ConfigurationError, match="does not match"):
            open_session(config, "lce", kind="cache")

    def test_service_batch_scoping(self):
        config = ScenarioConfig.small(seed=0)
        with pytest.raises(ConfigurationError, match="service_batch"):
            open_session(config, "mdp", service_batch=4)
        with pytest.raises(ConfigurationError, match="service_batch"):
            open_session(config, "lce", service_batch=4)

    def test_multihop_takes_exactly_one_policy(self):
        config = ScenarioConfig.small(seed=0)
        with pytest.raises(ConfigurationError, match="exactly one"):
            open_session(config, ("lce", "lcd"))
        session = open_session(config, "lce", kind="multihop")
        assert session.kind == "multihop"
        session.close()

    def test_max_pending_must_be_positive(self):
        config = ScenarioConfig.small(seed=0)
        with pytest.raises(ValidationError, match="max_pending"):
            open_session(config, "mdp", max_pending=0)

    def test_session_exports_are_public(self):
        import repro

        assert repro.open_session is open_session
        assert repro.SimulationSession is SimulationSession
