"""Socket round-trips through the asyncio serving front-end.

Real TCP connections against a :class:`~repro.serve.BackgroundServer`:
the replayed-trace round trip must close to the identical summary an
offline ``simulate()`` produces, malformed lines must not kill the
connection, and every reply must be strict JSON.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.exceptions import SimulationError
from repro.serve import BackgroundServer, ServeClient
from repro.serve.protocol import encode_reply, parse_line, sanitize
from repro.sim.engine import simulate
from repro.sim.scenario import ScenarioConfig
from repro.sim.system import SystemState
from repro.workloads.trace import export_trace

NUM_SLOTS = 25


@pytest.fixture(scope="module")
def trace_env(tmp_path_factory):
    base = ScenarioConfig.small(seed=13)
    path = str(tmp_path_factory.mktemp("serve") / "workload.jsonl")
    export_trace(SystemState(base).workload, NUM_SLOTS, path)
    return base.with_overrides(workload=f"trace:path={path}"), path


class TestServerRoundTrip:
    def test_replayed_trace_matches_offline_simulate(self, trace_env):
        config, path = trace_env
        offline = simulate(
            config, ("myopic", "lyapunov"), num_slots=NUM_SLOTS, metrics="summary"
        )
        with BackgroundServer(config, ("myopic", "lyapunov")) as server:
            with ServeClient(server.host, server.port) as client:
                sent = client.replay(path)
                final = client.close()
        assert sent > 0
        assert final["ok"] is True
        assert final["time_slot"] == NUM_SLOTS  # meta line padded the close
        assert final["requests"] == sent
        assert final["dropped"] == 0 and final["late"] == 0
        assert final["summary"] == offline.summary()

    def test_snapshot_streams_mid_run_aggregates(self, trace_env):
        config, path = trace_env
        with BackgroundServer(config, "lyapunov") as server:
            with ServeClient(server.host, server.port) as client:
                client.ingest_records([(0, 0, 0), (1, 0, 0)])
                snapshot = client.snapshot()
                assert snapshot["op"] == "snapshot"
                # Slot 0 ran (a slot-1 record arrived); slot 1 is pending.
                assert snapshot["time_slot"] == 1
                assert snapshot["pending"] == 1
                client.close()

    def test_sessions_are_per_connection(self, trace_env):
        config, _ = trace_env
        with BackgroundServer(config, "lyapunov") as server:
            with ServeClient(server.host, server.port) as first:
                with ServeClient(server.host, server.port) as second:
                    first.ingest_records([(0, 0, 0), (1, 0, 0)])
                    assert first.snapshot()["requests"] == 1
                    assert second.snapshot()["requests"] == 0

    def test_server_num_slots_pads_without_meta(self, trace_env):
        config, _ = trace_env
        with BackgroundServer(config, "lyapunov", num_slots=7) as server:
            with ServeClient(server.host, server.port) as client:
                client.ingest(0, 0, 0)
                final = client.close()
        assert final["time_slot"] == 7
        assert final["summary"]["num_slots"] == 7

    def test_ephemeral_port_is_reported(self, trace_env):
        config, _ = trace_env
        with BackgroundServer(config, "mdp", port=0) as server:
            assert server.port > 0


class TestProtocolErrors:
    def test_malformed_line_keeps_the_connection_alive(self, trace_env):
        config, _ = trace_env
        with BackgroundServer(config, "lyapunov") as server:
            with socket.create_connection((server.host, server.port)) as sock:
                stream = sock.makefile("rwb")
                stream.write(b"not json\n")
                stream.write(b'{"wrong": "shape"}\n')
                stream.write(b'{"op": "reboot"}\n')
                stream.flush()
                replies = [json.loads(stream.readline()) for _ in range(3)]
                assert all(reply["ok"] is False for reply in replies)
                # The connection still works after three bad lines.
                stream.write(b'{"op": "close"}\n')
                stream.flush()
                assert json.loads(stream.readline())["ok"] is True

    def test_invalid_record_earns_an_error_reply(self, trace_env):
        config, _ = trace_env
        with BackgroundServer(config, "lyapunov") as server:
            with socket.create_connection((server.host, server.port)) as sock:
                stream = sock.makefile("rwb")
                stream.write(b'{"t": 0, "rsu": 999, "content": 0}\n')
                stream.write(b'{"op": "snapshot"}\n')
                stream.flush()
                error = json.loads(stream.readline())
                assert error["ok"] is False
                assert "unknown rsu_id" in error["error"]
                assert json.loads(stream.readline())["ok"] is True

    def test_client_raises_on_server_error(self, trace_env):
        config, _ = trace_env
        with BackgroundServer(config, "lyapunov") as server:
            client = ServeClient(server.host, server.port)
            try:
                client.ingest(0, 999, 0)  # unknown RSU: error reply queued
                with pytest.raises(SimulationError, match="unknown rsu_id"):
                    client.snapshot()
            finally:
                client._teardown()

    def test_bad_server_configuration_fails_at_bind_time(self):
        config = ScenarioConfig.small(seed=0)
        with pytest.raises(Exception, match="exactly one"):
            with BackgroundServer(config, ("lce", "lcd")):
                pass  # pragma: no cover


class TestWireEncoding:
    def test_parse_line_shapes(self):
        assert parse_line("") is None
        assert parse_line('{"t": 1, "rsu": 2, "content": 3}') == (
            "record",
            (1, 2, 3),
        )
        assert parse_line('{"meta": {"num_slots": 9}}') == ("meta", 9)
        assert parse_line('{"op": "snapshot"}') == ("op", "snapshot")

    def test_replies_are_strict_json(self):
        payload = {"value": float("nan"), "nested": [float("inf"), 1.5]}
        assert sanitize(payload) == {"value": None, "nested": [None, 1.5]}
        assert json.loads(encode_reply(payload)) == {
            "value": None,
            "nested": [None, 1.5],
        }

    def test_nan_summaries_reach_the_client_as_null(self, trace_env):
        # A service summary with zero slots is NaN-heavy; over the wire it
        # must arrive as null, not as invalid JSON.
        config, _ = trace_env
        with BackgroundServer(config, "lyapunov") as server:
            with ServeClient(server.host, server.port) as client:
                snapshot = client.snapshot()
                assert snapshot["time_slot"] == 0
                assert snapshot["summary"]["time_average_cost"] is None
                assert snapshot["summary"]["service_rate"] is None
