"""Integration tests asserting the paper's qualitative claims.

Each test corresponds to a statement the paper makes about its evaluation
(Section III) or its analysis (Section II-C), checked on shortened but
faithful versions of the paper's scenarios.  These are the claims the
benchmark harness quantifies; the tests guarantee the claims hold under the
default configuration so a regression in any module surfaces here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.figures import build_fig1a_data, build_fig1b_data
from repro.analysis.stats import is_non_decreasing, linear_trend
from repro.analysis.sweep import v_sweep, weight_sweep
from repro.baselines.service import AlwaysServePolicy
from repro.core.lyapunov import LyapunovServiceController, run_backlog_simulation
from repro.core.policies import ServiceObservation
from repro.sim.scenario import ScenarioConfig


@pytest.fixture(scope="module")
def fig1a_data():
    config = ScenarioConfig.fig1a(seed=0).with_overrides(num_slots=300)
    return build_fig1a_data(config)


@pytest.fixture(scope="module")
def fig1b_data():
    config = ScenarioConfig.fig1b(seed=0).with_overrides(num_slots=300)
    return build_fig1b_data(config)


class TestFig1aClaims:
    """Claims: contents are refreshed before exceeding A_max; reward rises."""

    def test_tracked_contents_updated_before_exceeding_max_age(self, fig1a_data):
        for label, ages in fig1a_data.content_ages.items():
            max_age = fig1a_data.content_max_ages[label]
            # Allow a small transient from the random initial ages.
            violation_fraction = float(np.mean(ages > max_age))
            assert violation_fraction < 0.05, label

    def test_aoi_traces_show_refresh_sawtooth(self, fig1a_data):
        for ages in fig1a_data.content_ages.values():
            # At least one refresh (strict decrease) happens after warm-up.
            assert np.any(np.diff(ages) < 0)

    def test_cumulative_reward_continues_to_rise(self, fig1a_data):
        cumulative = fig1a_data.cumulative_reward
        assert is_non_decreasing(cumulative[10:])
        slope, _ = linear_trend(cumulative)
        assert slope > 0

    def test_twenty_contents_managed(self):
        config = ScenarioConfig.fig1a()
        assert config.num_contents == 20
        assert config.num_rsus == 4


class TestFig1bClaims:
    """Claims: the Lyapunov policy balances cost and latency vs. baselines."""

    def test_lyapunov_queue_is_stable(self, fig1b_data):
        latency = fig1b_data.latency["lyapunov"]
        half = len(latency) // 2
        assert latency[half:].mean() <= 2.0 * latency[:half].mean() + 10.0

    def test_lyapunov_cheaper_than_always_serve(self, fig1b_data):
        assert (
            fig1b_data.time_average_cost["lyapunov"]
            <= fig1b_data.time_average_cost["always-serve"] + 1e-9
        )

    def test_lyapunov_latency_below_cost_greedy(self, fig1b_data):
        assert (
            fig1b_data.time_average_backlog["lyapunov"]
            <= fig1b_data.time_average_backlog["cost-greedy"] + 1e-9
        )

    def test_service_happens_at_appropriate_times(self, fig1b_data):
        """The Lyapunov latency trace shows a serve/accumulate sawtooth."""
        latency = fig1b_data.latency["lyapunov"]
        assert np.any(np.diff(latency) < 0)
        assert np.any(np.diff(latency) > 0)


class TestSectionIICExtremeCases:
    """The two extreme cases the paper uses to sanity-check Eq. (5)."""

    def test_empty_queue_minimises_cost(self):
        controller = LyapunovServiceController(tradeoff_v=10.0)
        observation = ServiceObservation(
            time_slot=0,
            rsu_id=0,
            queue_backlog=0.0,
            service_cost=3.0,
            departure=1.0,
        )
        assert controller.decide(observation) is False

    def test_saturated_queue_maximises_departure(self):
        controller = LyapunovServiceController(tradeoff_v=10.0)
        observation = ServiceObservation(
            time_slot=0,
            rsu_id=0,
            queue_backlog=1e12,
            service_cost=3.0,
            departure=1.0,
        )
        assert controller.decide(observation) is True

    def test_queue_emptied_when_decision_is_serve(self):
        result = run_backlog_simulation(
            LyapunovServiceController(tradeoff_v=5.0),
            num_slots=200,
            arrival_fn=lambda t: 1.0,
            cost_fn=lambda t: 1.0,
            departure=5.0,
        )
        assert result.stable
        assert result.record.service_rate > 0.05


class TestTradeoffAblations:
    """The trade-offs the two control knobs (w and V) are supposed to steer."""

    def test_weight_controls_aoi_cost_tradeoff(self):
        config = ScenarioConfig.fig1a(seed=1).with_overrides(num_slots=120)
        rows = weight_sweep([0.1, 10.0], config=config)
        assert rows[1]["mean_age"] <= rows[0]["mean_age"] + 1e-9
        assert rows[1]["total_updates"] >= rows[0]["total_updates"]

    def test_v_controls_cost_backlog_tradeoff(self):
        config = ScenarioConfig.fig1b(seed=1).with_overrides(num_slots=200)
        rows = v_sweep([0.5, 100.0], config=config)
        assert rows[1]["time_average_cost"] <= rows[0]["time_average_cost"] + 1e-9
        assert rows[1]["time_average_backlog"] >= rows[0]["time_average_backlog"] - 1e-9
