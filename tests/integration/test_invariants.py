"""Cross-module invariants: conservation and accounting laws of the simulators.

These tests check relationships that must hold between quantities recorded by
*different* modules (workload, queues, caches, reward accounting), so a bug
in any one of them that silently skews an experiment shows up here even if
that module's own unit tests still pass.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.caching import standard_caching_baselines
from repro.baselines.service import AlwaysServePolicy
from repro.core.caching_mdp import MDPCachingPolicy
from repro.core.lyapunov import LyapunovServiceController
from repro.core.reward import UtilityFunction
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import CacheSimulator, ServiceSimulator


class TestCacheAccountingInvariants:
    """Reward accounting must be consistent with the recorded actions and ages."""

    @pytest.fixture(scope="class")
    def result(self):
        config = ScenarioConfig.fig1a(seed=8).with_overrides(num_slots=150)
        policy = MDPCachingPolicy(config.build_mdp_config())
        return CacheSimulator(config, policy).run()

    def test_total_updates_equals_action_history_sum(self, result):
        actions = result.metrics.action_matrix_history()
        assert result.metrics.total_updates == int(actions.sum())

    def test_cost_equals_updates_times_unit_cost(self, result):
        # The Fig. 1a scenario uses a constant cost model, so Eq. (3) reduces
        # to (number of updates) x (unit cost).
        config = result.config
        expected = result.metrics.total_updates * config.update_cost
        assert result.metrics.reward.total_cost == pytest.approx(expected)

    def test_total_reward_is_weighted_difference(self, result):
        trace = result.metrics.reward
        expected = result.config.aoi_weight * trace.total_aoi_utility - trace.total_cost
        assert trace.total_reward == pytest.approx(expected)

    def test_cumulative_reward_last_equals_total(self, result):
        assert result.cumulative_reward[-1] == pytest.approx(
            result.metrics.reward.total_reward
        )

    def test_recorded_ages_respect_update_resets(self, result):
        """Wherever an update was applied, the recorded age is the refresh age."""
        ages = result.metrics.age_matrix_history()
        actions = result.metrics.action_matrix_history()
        refreshed = ages[actions == 1]
        assert np.all(refreshed == 1.0)

    def test_ages_grow_by_at_most_one_between_slots(self, result):
        ages = result.metrics.age_matrix_history()
        deltas = np.diff(ages, axis=0)
        assert np.all(deltas <= 1.0 + 1e-9)

    def test_every_policy_preserves_accounting(self):
        config = ScenarioConfig.small(seed=4)
        for name, policy in standard_caching_baselines(rng=0).items():
            result = CacheSimulator(config, policy).run(num_slots=40)
            trace = result.metrics.reward
            expected = config.aoi_weight * trace.total_aoi_utility - trace.total_cost
            assert trace.total_reward == pytest.approx(expected), name


class TestServiceConservationInvariants:
    """Requests are conserved: arrived == served + still pending (+ expired)."""

    def _run(self, policy, *, num_slots=200, seed=9, deadline=None):
        config = ScenarioConfig.fig1b(seed=seed).with_overrides(
            num_slots=num_slots, deadline_slots=deadline
        )
        return config, ServiceSimulator(config, policy).run()

    def test_conservation_under_always_serve(self):
        """Under always-serve no request waits more than one slot (a fresh
        arrival has zero accumulated latency, so the policy fires at the
        latest on the following slot and then drains the whole queue).  Each
        request therefore appears in the pre-service backlog snapshot of at
        most two consecutive slots, bounding the backlog history in terms of
        the served total, and no RSU ever holds more than two pending
        requests under the at-most-one-Bernoulli-arrival workload."""
        config, result = self._run(AlwaysServePolicy())
        backlog_history = result.metrics.backlog_history()
        served = result.metrics.total_served
        assert served <= backlog_history.sum() <= 2 * served + 2 * config.num_rsus
        assert np.all(backlog_history <= 2 * config.num_rsus)

    def test_conservation_under_lyapunov(self):
        """Both policies face the identical seeded workload, so the Lyapunov
        policy can never serve more requests than always-serve, and whatever
        it has not served yet is bounded by its own peak backlog plus the
        worst-case arrivals of the final slot."""
        config, result = self._run(LyapunovServiceController(10.0))
        _, always = self._run(AlwaysServePolicy())
        assert result.metrics.total_served <= always.metrics.total_served
        unserved = always.metrics.total_served - result.metrics.total_served
        assert unserved <= result.metrics.peak_backlog + config.num_rsus

    def test_backlog_never_negative(self):
        _, result = self._run(LyapunovServiceController(10.0))
        assert np.all(result.metrics.backlog_history() >= 0)
        assert np.all(result.metrics.latency_history() >= 0)

    def test_costs_only_charged_on_service(self):
        _, result = self._run(LyapunovServiceController(1e12))
        # With an astronomically large V nothing is ever served, so no cost
        # may be charged.
        assert result.metrics.total_served == 0
        assert result.metrics.total_cost == 0.0


class TestRewardFunctionInvariants:
    """Pure-function invariants of the Eq. (1) evaluator."""

    @given(
        ages=st.lists(st.floats(min_value=1.0, max_value=30.0), min_size=1, max_size=6),
        weight=st.floats(min_value=0.0, max_value=10.0),
        cost=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_reward_decomposes_additively_over_contents(self, ages, weight, cost):
        """Eq. (1) over n contents equals the sum of n single-content rewards."""
        n = len(ages)
        max_ages = [20.0] * n
        costs = [cost] * n
        actions = [1 if i % 2 == 0 else 0 for i in range(n)]
        whole = UtilityFunction(max_ages, costs, weight=weight).total(
            [ages], [actions]
        )
        parts = sum(
            UtilityFunction([20.0], [cost], weight=weight).total(
                [[ages[i]]], [[actions[i]]]
            )
            for i in range(n)
        )
        assert whole == pytest.approx(parts)

    @given(
        age=st.floats(min_value=1.0, max_value=30.0),
        weight=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_skip_reward_independent_of_cost(self, age, weight):
        cheap = UtilityFunction([15.0], [0.1], weight=weight).total([[age]], [[0]])
        pricey = UtilityFunction([15.0], [9.9], weight=weight).total([[age]], [[0]])
        assert cheap == pytest.approx(pricey)
