"""End-to-end integration tests across the full library stack."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    CacheSimulator,
    JointSimulator,
    LyapunovServiceController,
    MDPCachingPolicy,
    ScenarioConfig,
    ServiceSimulator,
)
from repro.analysis import (
    build_fig1a_data,
    build_fig1b_data,
    caching_policy_comparison,
    format_table,
    render_fig1a,
    render_fig1b,
)
from repro.baselines import standard_caching_baselines, standard_service_baselines


class TestPublicApi:
    def test_version_exposed(self):
        assert repro.__version__ == "1.8.0"

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet_from_module_docstring(self):
        config = ScenarioConfig.fig1a(seed=0)
        policy = MDPCachingPolicy(config.build_mdp_config())
        result = CacheSimulator(config, policy).run(num_slots=50)
        summary = result.summary()
        assert summary["num_slots"] == 50.0
        assert np.isfinite(summary["total_reward"])


class TestTwoStagePipeline:
    def test_full_pipeline_runs_and_reports(self, small_config):
        joint = JointSimulator(
            small_config,
            MDPCachingPolicy(small_config.build_mdp_config()),
            LyapunovServiceController(small_config.tradeoff_v),
        ).run()
        summary = joint.summary()
        assert summary["cache_num_slots"] == small_config.num_slots
        assert summary["service_num_slots"] == small_config.num_slots
        assert np.isfinite(summary["cache_total_reward"])
        assert np.isfinite(summary["service_total_cost"])

    def test_every_caching_baseline_runs_through_simulator(self, small_config):
        for name, policy in standard_caching_baselines(rng=0).items():
            result = CacheSimulator(small_config, policy).run(num_slots=20)
            assert result.metrics.num_slots_recorded == 20, name

    def test_every_service_baseline_runs_through_simulator(self, small_config):
        for name, policy in standard_service_baselines(rng=0).items():
            result = ServiceSimulator(small_config, policy).run(num_slots=20)
            assert result.metrics.num_slots_recorded == 20, name

    def test_figure_builders_and_renderers_compose(self):
        fig1a = build_fig1a_data(
            ScenarioConfig.fig1a(seed=4).with_overrides(num_slots=60)
        )
        fig1b = build_fig1b_data(
            ScenarioConfig.fig1b(seed=4).with_overrides(num_slots=60)
        )
        assert "Fig. 1a" in render_fig1a(fig1a)
        assert "Fig. 1b" in render_fig1b(fig1b)

    def test_comparison_table_renders(self):
        rows = caching_policy_comparison(
            config=ScenarioConfig.small(seed=5), num_slots=30
        )
        table = format_table(rows)
        assert "mdp" in table


class TestReproducibility:
    def test_identical_seeds_identical_results_across_simulators(self):
        config = ScenarioConfig.fig1b(seed=11).with_overrides(num_slots=100)
        first = ServiceSimulator(config, LyapunovServiceController(10.0)).run()
        second = ServiceSimulator(config, LyapunovServiceController(10.0)).run()
        np.testing.assert_allclose(first.latency_history, second.latency_history)

    def test_policy_choice_does_not_perturb_workload(self):
        """Changing the service policy must not change the request trace."""
        config = ScenarioConfig.fig1b(seed=13).with_overrides(num_slots=100)
        always = ServiceSimulator(config, LyapunovServiceController(0.0)).run()
        never = ServiceSimulator(config, LyapunovServiceController(1e9)).run()
        # Total arrivals are identical even though service behaviour differs:
        # with V=0 the controller serves immediately, so everything arriving
        # is served; with a huge V nothing is served and the backlog equals
        # the arrival count.
        assert (
            always.metrics.total_served
            == never.metrics.backlog_history()[-1]
        )
