"""Concurrency and hashing-property tests for the run store (ISSUE satellite).

Two OS processes sharing one store must never lose rows or crash with
``database is locked`` — that is what the WAL journal and the busy
timeout are for, and it only shows up under real multi-process load, so
these tests spawn actual subprocesses, not threads.

The hypothesis section pins the content-addressing contract itself:
a cell key is a pure function of the run *configuration* (stable under
dict key reordering, which ``json.dumps(sort_keys=True)`` guarantees)
and distinct configurations never share a key.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.policies import PolicySpec
from repro.runtime.runner import ExperimentRunner, RunSpec
from repro.runtime.spec import ExperimentSpec
from repro.runtime.store import RunStore, _digest, cell_key
from repro.sim.scenario import ScenarioConfig

_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _run_worker(script_path, *args):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, str(script_path), *map(str, args)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _join(process):
    stdout, stderr = process.communicate(timeout=120)
    assert process.returncode == 0, f"worker failed:\n{stdout}\n{stderr}"
    return stdout


_HAMMER_WORKER = textwrap.dedent(
    """
    import sys

    import numpy as np

    from repro.runtime.runner import RunRecord, RunSpec
    from repro.runtime.store import RunStore
    from repro.sim.scenario import ScenarioConfig

    store_dir, start, stop = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
    scenario = ScenarioConfig.small(seed=11, num_slots=20)
    spec = RunSpec(
        kind="cache", scenario=scenario, policy="periodic:period=2", label="hammer"
    )
    with RunStore(store_dir) as store:
        for index in range(start, stop):
            record = RunRecord(
                label="hammer",
                seed=index,
                kind="cache",
                summary={"value": float(index), "policy": "periodic"},
                trace=np.full(3, float(index)),
            )
            # One transaction per cell: maximum write contention.
            assert store.put(spec, index, record)
            if index % 7 == 0:
                store.get(spec, max(start, index - 5))
    print("ok")
    """
)

_GRID_WORKER = textwrap.dedent(
    """
    import json
    import sys

    from repro.runtime.runner import ExperimentRunner
    from repro.runtime.spec import ExperimentSpec
    from repro.sim.scenario import ScenarioConfig

    store_dir, spec_names = sys.argv[1], json.loads(sys.argv[2])
    scenario = ScenarioConfig.small(seed=11, num_slots=20)
    grid = [
        ExperimentSpec(
            kind="cache",
            scenario=scenario,
            policy=policy,
            seed=13,
            num_seeds=8,
            label=label,
        )
        for label, policy in spec_names
    ]
    runner = ExperimentRunner(workers=1)
    batch = runner.run_grid(grid, store=store_dir)
    print(json.dumps({"records": len(batch)}))
    """
)

_ALL_SPECS = [
    ["p2", "periodic:period=2"],
    ["p3", "periodic:period=3"],
    ["always", "always"],
    ["never", "never"],
]


class TestTwoProcesses:
    def test_concurrent_writers_lose_no_rows(self, tmp_path):
        store_dir = str(tmp_path / "runs")
        script = tmp_path / "hammer.py"
        script.write_text(_HAMMER_WORKER)

        # Overlapping ranges: [0, 120) and [60, 180) race on 60 cells.
        first = _run_worker(script, store_dir, 0, 120)
        second = _run_worker(script, store_dir, 60, 180)
        _join(first)
        _join(second)

        scenario = ScenarioConfig.small(seed=11, num_slots=20)
        spec = RunSpec(
            kind="cache",
            scenario=scenario,
            policy="periodic:period=2",
            label="hammer",
        )
        with RunStore(store_dir) as store:
            assert len(store) == 180
            for index in range(180):
                record = store.get(spec, index)
                assert record is not None, f"cell {index} lost"
                assert record.summary["value"] == float(index)
                assert np.array_equal(record.trace, np.full(3, float(index)))
            assert store.stats.corrupt_cells == 0
            assert store.stats.resets == 0

    def test_concurrent_overlapping_sweeps_merge(self, tmp_path):
        store_dir = str(tmp_path / "runs")
        script = tmp_path / "grid.py"
        script.write_text(_GRID_WORKER)

        first = _run_worker(script, store_dir, json.dumps(_ALL_SPECS[:3]))
        second = _run_worker(script, store_dir, json.dumps(_ALL_SPECS[1:]))
        assert json.loads(_join(first))["records"] == 24
        assert json.loads(_join(second))["records"] == 24

        with RunStore(store_dir) as store:
            assert len(store) == len(_ALL_SPECS) * 8  # union, no lost rows

        # A third sweep over the full grid is fully warm and bit-identical
        # to a cold run.
        scenario = ScenarioConfig.small(seed=11, num_slots=20)
        grid = [
            ExperimentSpec(
                kind="cache",
                scenario=scenario,
                policy=policy,
                seed=13,
                num_seeds=8,
                label=label,
            )
            for label, policy in _ALL_SPECS
        ]
        runner = ExperimentRunner(workers=1)
        warm = runner.run_grid(grid, store=store_dir)
        report = runner.last_dispatch_stats["run_store"]
        assert report["cells_cached"] == len(_ALL_SPECS) * 8
        assert report["cells_dispatched"] == 0
        cold = ExperimentRunner(workers=1).run_grid(grid, store=False)
        assert warm.matches(cold)


# ----------------------------------------------------------------------
# Hashing properties
# ----------------------------------------------------------------------
_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)

_payloads = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.recursive(
        _json_scalars,
        lambda inner: st.one_of(
            st.lists(inner, max_size=4),
            st.dictionaries(st.text(min_size=1, max_size=8), inner, max_size=4),
        ),
        max_leaves=8,
    ),
    min_size=1,
    max_size=6,
)


def _reorder(value):
    """Recursively rebuild dicts with reversed key insertion order."""
    if isinstance(value, dict):
        return {key: _reorder(value[key]) for key in reversed(list(value))}
    if isinstance(value, list):
        return [_reorder(item) for item in value]
    return value


class TestHashProperties:
    @settings(max_examples=100, derandomize=True, deadline=None)
    @given(payload=_payloads)
    def test_digest_stable_under_key_reordering(self, payload):
        reordered = _reorder(payload)
        assert reordered == payload  # same mapping ...
        assert _digest(reordered) == _digest(payload)  # ... same digest

    @settings(max_examples=100, derandomize=True, deadline=None)
    @given(first=_payloads, second=_payloads)
    def test_distinct_payloads_never_collide(self, first, second):
        if first == second:
            assert _digest(first) == _digest(second)
        else:
            assert _digest(first) != _digest(second)

    @settings(max_examples=50, derandomize=True, deadline=None)
    @given(
        weight=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        refresh_age=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_spec_key_stable_under_param_reordering(
        self, weight, refresh_age, seed
    ):
        scenario = ScenarioConfig.small(seed=11, num_slots=20)
        forward = PolicySpec("myopic", {"weight": weight, "refresh_age": refresh_age})
        backward = PolicySpec("myopic", {"refresh_age": refresh_age, "weight": weight})
        key_forward = cell_key(
            RunSpec(kind="cache", scenario=scenario, policy=forward), seed
        )
        key_backward = cell_key(
            RunSpec(kind="cache", scenario=scenario, policy=backward), seed
        )
        assert key_forward == key_backward is not None

    @settings(max_examples=50, derandomize=True, deadline=None)
    @given(
        periods=st.tuples(
            st.integers(min_value=1, max_value=500),
            st.integers(min_value=1, max_value=500),
        ),
        seeds=st.tuples(
            st.integers(min_value=0, max_value=2**20),
            st.integers(min_value=0, max_value=2**20),
        ),
    )
    def test_distinct_specs_never_collide(self, periods, seeds):
        scenario = ScenarioConfig.small(seed=11, num_slots=20)

        def key(period, seed):
            spec = RunSpec(
                kind="cache",
                scenario=scenario,
                policy=PolicySpec("periodic", {"period": period}),
            )
            return cell_key(spec, seed)

        first = key(periods[0], seeds[0])
        second = key(periods[1], seeds[1])
        if (periods[0], seeds[0]) == (periods[1], seeds[1]):
            assert first == second
        else:
            assert first != second

    def test_kind_and_horizon_separate_keys(self):
        scenario = ScenarioConfig.small(seed=11, num_slots=20)
        base = RunSpec(kind="cache", scenario=scenario, policy="always")
        keys = {
            cell_key(base, 0),
            cell_key(RunSpec(kind="service", scenario=scenario,
                             policy="always-serve"), 0),
            cell_key(
                RunSpec(kind="cache", scenario=scenario, policy="always",
                        num_slots=21),
                0,
            ),
            cell_key(
                RunSpec(kind="cache", scenario=scenario, policy="always",
                        reference=True),
                0,
            ),
        }
        assert None not in keys
        assert len(keys) == 4
