"""Tests for repro.runtime.spec (serializable experiment specifications).

Covers the lossless JSON round-trips of ``ExperimentSpec`` /
``PolicySpec`` / ``ScenarioConfig``, error messages for unknown names and
fields, and — the headline acceptance contract — that an
``ExperimentSpec`` grid loaded from JSON executes to a ``BatchResult``
bit-identical to the equivalent hand-constructed ``RunSpec`` grid.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.sweep import lyapunov_policy_factory, mdp_policy_factory
from repro.exceptions import ConfigurationError, ValidationError
from repro.policies import PolicySpec
from repro.runtime import (
    ExperimentRunner,
    ExperimentSpec,
    RunSpec,
    expand_workloads,
    load_specs,
    save_specs,
)
from repro.sim.scenario import ScenarioConfig
from repro.workloads import WorkloadSpec


@pytest.fixture
def scenario():
    return ScenarioConfig.small(seed=5, num_slots=30)


@pytest.fixture
def spec(scenario):
    return ExperimentSpec(
        kind="cache", scenario=scenario, policy="mdp", num_seeds=2
    )


class TestRoundTrips:
    def test_experiment_spec_json_round_trip(self, spec):
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_round_trip_through_plain_json(self, scenario):
        original = ExperimentSpec(
            kind="joint",
            scenario=scenario.with_overrides(workload="drift:period=10"),
            policy=PolicySpec.parse("mdp:mode=factored"),
            service_policy="lyapunov:tradeoff_v=25",
            seed=3,
            num_seeds=4,
            mode="reference",
            label="my-grid-point",
            num_slots=20,
            service_batch=2,
        )
        rebuilt = ExperimentSpec.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert rebuilt == original
        assert rebuilt.scenario.workload == original.scenario.workload

    def test_scenario_config_round_trip(self, scenario):
        rebuilt = ScenarioConfig.from_dict(
            json.loads(json.dumps(scenario.to_dict()))
        )
        assert rebuilt == scenario

    def test_scenario_round_trip_preserves_workload_params(self):
        config = ScenarioConfig.small(workload="flash-crowd:burst_prob=0.2")
        rebuilt = ScenarioConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert rebuilt == config
        assert rebuilt.workload.params_dict["burst_prob"] == 0.2

    def test_policy_spec_round_trip(self):
        spec = PolicySpec.parse("cost-greedy:backlog_cap=50,deadline_slack=2")
        assert PolicySpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_workload_spec_round_trip(self):
        spec = WorkloadSpec.parse("drift:period=25,step=0.4")
        assert WorkloadSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec


class TestValidation:
    def test_unknown_policy_name(self, scenario):
        with pytest.raises(ConfigurationError, match="unknown policy"):
            ExperimentSpec(kind="cache", scenario=scenario, policy="nope")

    def test_wrong_policy_role(self, scenario):
        with pytest.raises(ConfigurationError, match="service policy"):
            ExperimentSpec(kind="cache", scenario=scenario, policy="lyapunov")

    def test_joint_needs_service_policy(self, scenario):
        with pytest.raises(ValidationError, match="service_policy"):
            ExperimentSpec(kind="joint", scenario=scenario, policy="mdp")

    def test_service_policy_rejected_off_joint(self, scenario):
        with pytest.raises(ValidationError, match="joint"):
            ExperimentSpec(
                kind="cache",
                scenario=scenario,
                policy="mdp",
                service_policy="lyapunov",
            )

    def test_unknown_field_in_dict(self, spec):
        data = spec.to_dict()
        data["policyy"] = {"name": "mdp"}
        with pytest.raises(ConfigurationError, match="policyy"):
            ExperimentSpec.from_dict(data)

    def test_unknown_scenario_field(self):
        with pytest.raises(ConfigurationError, match="num_rsuss"):
            ScenarioConfig.from_dict({"num_rsuss": 3})

    def test_bad_mode(self, scenario):
        with pytest.raises(ValidationError, match="mode"):
            ExperimentSpec(
                kind="cache", scenario=scenario, policy="mdp", mode="turbo"
            )

    def test_auto_label_tracks_policies(self, scenario):
        spec = ExperimentSpec(
            kind="joint",
            scenario=scenario,
            policy="mdp",
            service_policy="lyapunov:tradeoff_v=25",
        )
        assert spec.label == "joint:mdp+lyapunov(tradeoff_v=25)"


class TestExecution:
    def test_spec_grid_matches_hand_built_runspec_grid(self, scenario, spec):
        runner = ExperimentRunner(workers=1)
        declarative = runner.run_grid([spec])
        hand_built = runner.run_grid(
            [
                RunSpec(
                    kind="cache",
                    scenario=scenario,
                    policy=mdp_policy_factory,
                    seed=spec.seed,
                    label=spec.label,
                )
            ],
            num_seeds=2,
        )
        assert declarative.matches(hand_built)

    def test_loaded_json_matches_hand_built(self, scenario, spec, tmp_path):
        path = str(tmp_path / "experiments.json")
        save_specs([spec], path)
        loaded = load_specs(path)
        assert loaded == [spec]
        runner = ExperimentRunner(workers=1)
        assert runner.run_grid(loaded).matches(runner.run_grid([spec]))

    def test_joint_spec_matches_hand_built(self, scenario):
        spec = ExperimentSpec(
            kind="joint",
            scenario=scenario,
            policy="mdp",
            service_policy="lyapunov",
            num_seeds=2,
        )
        runner = ExperimentRunner(workers=1)
        declarative = runner.run_grid([spec])
        hand_built = runner.run_grid(
            [
                RunSpec(
                    kind="joint",
                    scenario=scenario,
                    policy=mdp_policy_factory,
                    service_policy=lyapunov_policy_factory,
                    seed=0,
                    label=spec.label,
                )
            ],
            num_seeds=2,
        )
        assert declarative.matches(hand_built)

    def test_explicit_num_seeds_overrides_spec(self, spec):
        runner = ExperimentRunner(workers=1)
        batch = runner.run_grid([spec], num_seeds=1)
        assert len(batch) == 1

    def test_reference_mode_matches_fast_path(self, scenario):
        runner = ExperimentRunner(workers=1)
        fast = runner.run_grid(
            [ExperimentSpec(kind="cache", scenario=scenario, policy="mdp",
                            num_seeds=2)]
        )
        slow = runner.run_grid(
            [ExperimentSpec(kind="cache", scenario=scenario, policy="mdp",
                            num_seeds=2, mode="reference")]
        )
        assert fast.matches(slow)

    def test_runner_run_accepts_specs(self, spec):
        batch = ExperimentRunner(workers=1).run([spec])
        assert len(batch) == spec.num_seeds

    def test_expand_workloads_emits_experiment_specs(self, spec):
        expanded = expand_workloads([spec], ["stationary", "drift:period=10"])
        assert all(isinstance(entry, ExperimentSpec) for entry in expanded)
        assert [entry.scenario.workload.name for entry in expanded] == [
            "stationary",
            "drift",
        ]
        assert expanded[1].label.endswith("|drift(period=10)")
        # Still serializable after expansion.
        for entry in expanded:
            assert ExperimentSpec.from_json(entry.to_json()) == entry


class TestBatchExport:
    def test_rows_schema(self, spec):
        batch = ExperimentRunner(workers=1).run_grid([spec])
        rows = batch.rows()
        assert len(rows) == 2
        for row in rows:
            assert list(row)[:3] == ["label", "seed", "kind"]
            assert row["label"] == spec.label
            assert row["kind"] == "cache"

    def test_to_json_writes_loadable_document(self, spec, tmp_path):
        path = str(tmp_path / "batch.json")
        batch = ExperimentRunner(workers=1).run_grid([spec])
        text = batch.to_json(path)
        on_disk = json.loads(open(path).read())
        assert json.loads(text) == on_disk
        assert on_disk["schema"]["version"] == 1
        assert len(on_disk["rows"]) == 2
        assert len(on_disk["aggregate"]) == 1
        assert on_disk["aggregate"][0]["num_seeds"] == 2


class TestMultihopSpecs:
    def scenario(self):
        return ScenarioConfig(
            num_rsus=3,
            contents_per_rsu=3,
            num_slots=15,
            seed=5,
            topology_kind="line",
            hop_delay=2.0,
        )

    def test_round_trip_is_lossless(self):
        spec = ExperimentSpec(
            kind="multihop",
            scenario=self.scenario(),
            policy="probcache:t_tw=5",
            num_seeds=2,
        )
        rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.scenario.topology_kind == "line"
        assert rebuilt.scenario.hop_delay == 2.0
        assert rebuilt.policy.label() == "probcache(t_tw=5.0)"

    def test_any_role_accepted(self):
        for policy in ("lce", "mdp", "lyapunov"):
            spec = ExperimentSpec(
                kind="multihop", scenario=self.scenario(), policy=policy
            )
            assert spec.label == f"multihop:{policy}"

    def test_service_policy_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentSpec(
                kind="multihop",
                scenario=self.scenario(),
                policy="lce",
                service_policy="lyapunov",
            )

    def test_executes_through_the_runner(self):
        spec = ExperimentSpec(
            kind="multihop", scenario=self.scenario(), policy="lce", num_seeds=2
        )
        batch = ExperimentRunner(workers=1).run_grid([spec])
        assert len(batch) == 2
        for record in batch.records:
            assert record.kind == "multihop"
            assert 0.0 <= record.summary["hit_ratio"] <= 1.0
            assert record.trace is not None
