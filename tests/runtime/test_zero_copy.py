"""Zero-copy dispatch and metrics-mode threading through the runner.

Pins the PR-5 runtime contracts: shared-memory horizon shipment produces
records bit-identical to worker-side regeneration (for every worker count),
the parent memoises horizons per (scenario, seed), dispatch statistics are
reported, ``metrics="summary"`` specs execute end to end with identical
summary rows, and the knob round-trips through the declarative
:class:`~repro.runtime.spec.ExperimentSpec` JSON format and the CLI.
"""

from __future__ import annotations

import io
import json
from dataclasses import replace

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.policies import PolicySpec
from repro.runtime.runner import ExperimentRunner, RunSpec
from repro.runtime.shm import (
    HorizonShipment,
    attach_horizons,
    precompute_horizon,
    shared_memory_available,
)
from repro.runtime.spec import ExperimentSpec
from repro.sim.scenario import ScenarioConfig
from repro.sim.system import SystemState

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="multiprocessing.shared_memory unavailable"
)


@pytest.fixture
def service_scenario():
    return ScenarioConfig.fig1b(seed=0).with_overrides(num_slots=60)


@pytest.fixture
def service_specs(service_scenario):
    return [
        RunSpec(
            kind="service",
            scenario=service_scenario,
            policy=PolicySpec.coerce("lyapunov"),
            label="lyapunov",
        ),
        RunSpec(
            kind="service",
            scenario=service_scenario,
            policy=PolicySpec.coerce("always-serve"),
            label="always",
        ),
    ]


class TestHorizonPrecompute:
    def test_matches_system_state_generation(self, service_scenario):
        expected = SystemState(service_scenario).workload.generate_horizon(60)
        shipped = precompute_horizon(service_scenario, 60)
        for field in ("batch_rsus", "batch_ptr", "content_ids", "slot_ptr"):
            np.testing.assert_array_equal(
                getattr(expected, field), getattr(shipped, field)
            )

    @needs_shm
    def test_pack_attach_roundtrip(self, service_specs):
        shipment = HorizonShipment()
        try:
            handle = shipment.handle_for(service_specs[0], [0, 1])
            assert handle is not None
            attached = attach_horizons(handle)
            assert len(attached.horizons) == 2
            direct = precompute_horizon(
                service_specs[0].scenario.with_overrides(seed=1), 60
            )
            replayed = attached.horizons[1]
            np.testing.assert_array_equal(direct.content_ids, replayed.content_ids)
            assert replayed.num_slots == 60
            attached.close()
        finally:
            shipment.close()

    @needs_shm
    def test_horizons_memoised_across_specs(self, service_specs):
        shipment = HorizonShipment()
        try:
            shipment.handle_for(service_specs[0], [0, 1])
            shipment.handle_for(service_specs[1], [0, 1])
        finally:
            shipment.close()
        assert shipment.horizons_computed == 2
        assert shipment.horizons_reused == 2

    def test_cache_and_reference_tasks_skip_shipment(self, service_scenario):
        shipment = HorizonShipment()
        try:
            cache_spec = RunSpec(
                kind="cache",
                scenario=ScenarioConfig.small(seed=0, num_slots=20),
                policy=PolicySpec.coerce("never"),
            )
            assert shipment.handle_for(cache_spec, [0]) is None
            reference_spec = RunSpec(
                kind="service",
                scenario=service_scenario,
                policy=PolicySpec.coerce("always-serve"),
                reference=True,
            )
            assert shipment.handle_for(reference_spec, [0]) is None
        finally:
            shipment.close()


class TestZeroCopyDispatch:
    @needs_shm
    def test_records_identical_with_and_without_shm(self, service_specs):
        with_shm = ExperimentRunner(workers=2, shared_memory=True)
        batch = with_shm.run_grid(service_specs, num_seeds=3)
        plain = ExperimentRunner(workers=2, shared_memory=False).run_grid(
            service_specs, num_seeds=3
        )
        serial = ExperimentRunner(workers=1).run_grid(service_specs, num_seeds=3)
        assert batch.matches(plain)
        assert batch.matches(serial)
        stats = with_shm.last_dispatch_stats
        assert stats["shared_memory"] is True
        assert stats["shm_blocks"] > 0
        assert stats["horizons_computed"] == 3
        assert stats["horizons_reused"] == 3
        assert stats["per_worker"]
        assert stats["task_seconds_total"] > 0.0

    @needs_shm
    def test_joint_kind_through_shm(self):
        scenario = ScenarioConfig.small(seed=3, num_slots=40, arrival_rate=0.8)
        specs = [
            RunSpec(
                kind="joint",
                scenario=scenario,
                policy=PolicySpec.coerce("mdp"),
                service_policy=PolicySpec.coerce("lyapunov"),
                label="joint",
            )
        ]
        parallel = ExperimentRunner(workers=2, shared_memory=True).run_grid(
            specs, num_seeds=3
        )
        serial = ExperimentRunner(workers=1).run_grid(specs, num_seeds=3)
        assert parallel.matches(serial)

    def test_serial_run_skips_shm_but_reports_stats(self, service_specs):
        runner = ExperimentRunner(workers=1, shared_memory=True)
        runner.run_grid(service_specs, num_seeds=2)
        stats = runner.last_dispatch_stats
        assert stats["shared_memory"] is False
        assert stats["shm_blocks"] == 0
        assert stats["tasks"] == 2


class TestMetricsThreading:
    def test_runspec_validates_metrics(self, service_scenario):
        with pytest.raises(ValidationError):
            RunSpec(
                kind="service",
                scenario=service_scenario,
                policy=PolicySpec.coerce("lyapunov"),
                metrics="everything",
            )

    def test_summary_specs_execute_identically(self, service_specs):
        full = ExperimentRunner(workers=1).run_grid(service_specs, num_seeds=3)
        summary = ExperimentRunner(workers=1).run_grid(
            [replace(spec, metrics="summary") for spec in service_specs],
            num_seeds=3,
        )
        assert full.rows() == summary.rows()
        assert full.matches(summary)

    def test_summary_cache_specs_keep_traces(self):
        spec = RunSpec(
            kind="cache",
            scenario=ScenarioConfig.small(seed=0, num_slots=30),
            policy=PolicySpec.coerce("mdp"),
            metrics="summary",
            label="cache",
        )
        batch = ExperimentRunner(workers=1).run_grid([spec], num_seeds=2)
        full = ExperimentRunner(workers=1).run_grid(
            [replace(spec, metrics="full")], num_seeds=2
        )
        assert batch.matches(full)
        assert all(record.trace is not None for record in batch.records)

    def test_experiment_spec_round_trips_metrics(self):
        spec = ExperimentSpec(
            kind="cache",
            scenario=ScenarioConfig.small(seed=0, num_slots=20),
            policy="mdp",
            metrics="summary",
        )
        rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.metrics == "summary"
        assert rebuilt.to_run_spec().metrics == "summary"

    def test_experiment_spec_metrics_default_and_validation(self):
        spec = ExperimentSpec(
            kind="cache",
            scenario=ScenarioConfig.small(seed=0, num_slots=20),
            policy="mdp",
        )
        assert spec.metrics == "full"
        with pytest.raises(ValidationError):
            spec.with_overrides(metrics="everything")

    def test_cli_metrics_flag(self, tmp_path):
        from repro.cli import main
        from repro.runtime.spec import save_specs

        path = str(tmp_path / "experiments.json")
        out_path = str(tmp_path / "results.json")
        save_specs(
            [
                ExperimentSpec(
                    kind="cache",
                    scenario=ScenarioConfig.small(seed=0, num_slots=20),
                    policy="mdp",
                    num_seeds=2,
                )
            ],
            path,
        )
        out = io.StringIO()
        code = main(
            [
                "run",
                "--spec",
                path,
                "--metrics",
                "summary",
                "--out",
                out_path,
                "--workers",
                "1",
            ],
            out=out,
        )
        assert code == 0, out.getvalue()
        document = json.loads(open(out_path).read())
        assert document["rows"]
        # --metrics without --spec is a usage error.
        out = io.StringIO()
        assert main(["run", "E1", "--metrics", "summary"], out=out) == 2
        assert "--metrics applies to --spec" in out.getvalue()
