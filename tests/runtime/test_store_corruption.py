"""Corruption-recovery tests for the run store (ISSUE satellite).

A store that serves stale or torn data is worse than no store.  Each test
here damages the on-disk state a different way — truncated database,
garbage database, torn trace blob, missing blob, unparsable summary row,
schema-version mismatch — and asserts the same three outcomes every time:
the damage is *detected*, *logged*, and the affected cells *recompute*
(never silently served).
"""

from __future__ import annotations

import logging
import os
import sqlite3

import numpy as np
import pytest

from repro.runtime.runner import ExperimentRunner, RunRecord, RunSpec
from repro.runtime.spec import ExperimentSpec
from repro.runtime.store import (
    DATABASE_NAME,
    STORE_SCHEMA_VERSION,
    RunStore,
    cell_key,
)
from repro.sim.scenario import ScenarioConfig


@pytest.fixture(scope="module")
def tiny_scenario():
    return ScenarioConfig.small(seed=11, num_slots=30)


def make_spec(tiny_scenario, **overrides):
    fields = dict(
        kind="cache",
        scenario=tiny_scenario,
        policy="periodic:period=2",
        seed=7,
        label="a",
    )
    fields.update(overrides)
    return RunSpec(**fields)


def make_record(spec, seed):
    return RunRecord(
        label=spec.label,
        seed=int(seed),
        kind=spec.kind,
        summary={"total_reward": 1.25, "policy": "periodic"},
        trace=np.linspace(0.0, 1.0, 5),
    )


def seeded_store(directory, spec, seeds=(3,)):
    """A store holding one valid cell per seed, with its connection closed."""
    with RunStore(str(directory)) as store:
        for seed in seeds:
            assert store.put(spec, seed, make_record(spec, seed))
    return str(directory)


class TestTruncatedDatabase:
    def test_truncated_file_resets_and_recovers(
        self, tiny_scenario, tmp_path, caplog
    ):
        spec = make_spec(tiny_scenario)
        directory = seeded_store(tmp_path / "runs", spec)
        database = os.path.join(directory, DATABASE_NAME)
        with open(database, "r+b") as handle:
            handle.truncate(100)  # keep a partial header: classic torn write

        with caplog.at_level(logging.WARNING, logger="repro.runtime.store"):
            with RunStore(directory) as store:
                assert store.get(spec, 3) is None  # detected -> miss
                assert store.stats.resets == 1
                # The store works again after the rebuild.
                assert store.put(spec, 3, make_record(spec, 3))
                assert store.get(spec, 3) is not None
        assert any("rebuilding" in message for message in caplog.messages)

    def test_garbage_file_resets_and_recovers(self, tiny_scenario, tmp_path, caplog):
        spec = make_spec(tiny_scenario)
        directory = str(tmp_path / "runs")
        os.makedirs(directory)
        with open(os.path.join(directory, DATABASE_NAME), "wb") as handle:
            handle.write(b"this is not a sqlite database, sorry" * 100)

        with caplog.at_level(logging.WARNING, logger="repro.runtime.store"):
            with RunStore(directory) as store:
                assert store.get(spec, 3) is None
                assert store.stats.resets == 1
        assert any("rebuilding" in message for message in caplog.messages)


class TestTornBlob:
    def test_garbage_blob_drops_the_cell(self, tiny_scenario, tmp_path, caplog):
        spec = make_spec(tiny_scenario)
        directory = seeded_store(tmp_path / "runs", spec)
        key = cell_key(spec, 3)
        blob = os.path.join(directory, "blobs", f"{key}.npz")
        with open(blob, "wb") as handle:
            handle.write(b"\x00\x01garbage")

        with caplog.at_level(logging.WARNING, logger="repro.runtime.store"):
            with RunStore(directory) as store:
                assert store.get(spec, 3) is None
                assert store.stats.corrupt_cells == 1
                # The cell is gone, not just skipped: a second lookup is a
                # plain miss and a fresh put works.
                assert store.get(spec, 3) is None
                assert store.stats.corrupt_cells == 1
                assert store.put(spec, 3, make_record(spec, 3))
                loaded = store.get(spec, 3)
        assert loaded is not None and loaded.trace is not None
        assert any("torn trace blob" in message for message in caplog.messages)

    def test_truncated_blob_drops_the_cell(self, tiny_scenario, tmp_path):
        spec = make_spec(tiny_scenario)
        directory = seeded_store(tmp_path / "runs", spec)
        key = cell_key(spec, 3)
        blob = os.path.join(directory, "blobs", f"{key}.npz")
        with open(blob, "r+b") as handle:
            handle.truncate(10)  # valid zip magic is gone mid-file
        with RunStore(directory) as store:
            assert store.get(spec, 3) is None
            assert store.stats.corrupt_cells == 1

    def test_missing_blob_drops_the_cell(self, tiny_scenario, tmp_path):
        spec = make_spec(tiny_scenario)
        directory = seeded_store(tmp_path / "runs", spec)
        os.remove(os.path.join(directory, "blobs", f"{cell_key(spec, 3)}.npz"))
        with RunStore(directory) as store:
            assert store.get(spec, 3) is None
            assert store.stats.corrupt_cells == 1


class TestCorruptRow:
    def test_unparsable_summary_drops_the_cell(self, tiny_scenario, tmp_path, caplog):
        spec = make_spec(tiny_scenario)
        directory = seeded_store(tmp_path / "runs", spec)
        with sqlite3.connect(os.path.join(directory, DATABASE_NAME)) as connection:
            connection.execute("UPDATE cells SET summary_json = '{not json'")

        with caplog.at_level(logging.WARNING, logger="repro.runtime.store"):
            with RunStore(directory) as store:
                assert store.get(spec, 3) is None
                assert store.stats.corrupt_cells == 1
                assert len(store) == 0  # dropped, not retried forever
        assert any("unparsable summary JSON" in m for m in caplog.messages)

    def test_non_object_summary_drops_the_cell(self, tiny_scenario, tmp_path):
        spec = make_spec(tiny_scenario)
        directory = seeded_store(tmp_path / "runs", spec)
        with sqlite3.connect(os.path.join(directory, DATABASE_NAME)) as connection:
            connection.execute("UPDATE cells SET summary_json = '[1, 2, 3]'")
        with RunStore(directory) as store:
            assert store.get(spec, 3) is None
            assert store.stats.corrupt_cells == 1

    def test_rows_skips_unparsable_cells(self, tiny_scenario, tmp_path):
        spec = make_spec(tiny_scenario)
        directory = seeded_store(tmp_path / "runs", spec, seeds=(3, 4))
        key = cell_key(spec, 3)
        with sqlite3.connect(os.path.join(directory, DATABASE_NAME)) as connection:
            connection.execute(
                "UPDATE cells SET summary_json = 'junk' WHERE cell_key = ?", (key,)
            )
        with RunStore(directory) as store:
            rows = store.rows()
        assert len(rows) == 1
        assert rows[0]["seed"] == 4


class TestSchemaMismatch:
    def test_older_schema_rebuilds_the_store(self, tiny_scenario, tmp_path, caplog):
        spec = make_spec(tiny_scenario)
        directory = seeded_store(tmp_path / "runs", spec)
        with sqlite3.connect(os.path.join(directory, DATABASE_NAME)) as connection:
            connection.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(STORE_SCHEMA_VERSION + 1),),
            )

        with caplog.at_level(logging.WARNING, logger="repro.runtime.store"):
            with RunStore(directory) as store:
                assert store.get(spec, 3) is None
                assert store.stats.resets == 1
                # The rebuilt store pins the current schema version.
                row = store._connect().execute(
                    "SELECT value FROM meta WHERE key = 'schema_version'"
                ).fetchone()
        assert row == (str(STORE_SCHEMA_VERSION),)
        assert any("schema version" in message for message in caplog.messages)

    def test_schema_reset_discards_blobs_too(self, tiny_scenario, tmp_path):
        spec = make_spec(tiny_scenario)
        directory = seeded_store(tmp_path / "runs", spec)
        blob_dir = os.path.join(directory, "blobs")
        assert os.listdir(blob_dir)
        with sqlite3.connect(os.path.join(directory, DATABASE_NAME)) as connection:
            connection.execute("UPDATE meta SET value = '0'")
        with RunStore(directory) as store:
            store.get(spec, 3)
        assert os.listdir(blob_dir) == []


class TestGridRecovery:
    def test_corrupted_store_grid_still_bit_identical(self, tiny_scenario, tmp_path):
        """End to end: a damaged store never taints run_grid results."""
        spec = ExperimentSpec(
            kind="cache",
            scenario=tiny_scenario,
            policy="periodic:period=2",
            seed=7,
            num_seeds=6,
            label="a",
        )
        cold = ExperimentRunner(workers=1).run_grid([spec], store=False)

        store_dir = str(tmp_path / "runs")
        ExperimentRunner(workers=1).run_grid([spec], store=store_dir)
        # Tear every blob: all six cells become unusable.
        blob_dir = os.path.join(store_dir, "blobs")
        for name in os.listdir(blob_dir):
            with open(os.path.join(blob_dir, name), "wb") as handle:
                handle.write(b"torn")

        runner = ExperimentRunner(workers=1)
        recovered = runner.run_grid([spec], store=store_dir)
        report = runner.last_dispatch_stats["run_store"]
        assert report["cells_cached"] == 0
        assert report["cells_dispatched"] == 6
        assert recovered.matches(cold)

        # The recomputation healed the store.
        runner = ExperimentRunner(workers=1)
        healed = runner.run_grid([spec], store=store_dir)
        assert runner.last_dispatch_stats["run_store"]["cells_cached"] == 6
        assert healed.matches(cold)
