"""Unit tests for repro.runtime.store (the persistent run store).

The store's contract is simple to state and easy to get subtly wrong: a
hit must be bit-identical to the run it replaced, a key must identify the
run configuration and nothing else (labels are presentation, not
identity), and anything the store cannot address or reproduce exactly
must bypass it rather than risk a wrong answer.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.policies import PolicySpec
from repro.runtime.runner import RunRecord, RunSpec
from repro.runtime.store import (
    DEFAULT_DIRECTORY,
    RunStore,
    cell_key,
    resolve_store,
    spec_hash,
    spec_payload,
)
from repro.sim.scenario import ScenarioConfig


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_RUN_STORE", raising=False)
    monkeypatch.delenv("REPRO_RUN_STORE_DIR", raising=False)


@pytest.fixture(scope="module")
def tiny_scenario():
    return ScenarioConfig.small(seed=11, num_slots=30)


def make_spec(tiny_scenario, *, policy="periodic", label="a", **overrides):
    fields = dict(
        kind="cache", scenario=tiny_scenario, policy=policy, seed=7, label=label
    )
    fields.update(overrides)
    return RunSpec(**fields)


def make_record(spec, seed, *, value=1.25, trace=True):
    return RunRecord(
        label=spec.label,
        seed=int(seed),
        kind=spec.kind,
        summary={"total_reward": value, "policy": str(spec.policy)},
        trace=np.linspace(0.0, value, 5) if trace else None,
    )


class TestCellKeys:
    def test_key_is_deterministic(self, tiny_scenario):
        spec = make_spec(tiny_scenario)
        assert cell_key(spec, 3) == cell_key(spec, 3)

    def test_seed_enters_the_key(self, tiny_scenario):
        spec = make_spec(tiny_scenario)
        assert cell_key(spec, 3) != cell_key(spec, 4)

    def test_label_does_not_enter_the_key(self, tiny_scenario):
        a = make_spec(tiny_scenario, label="a")
        b = make_spec(tiny_scenario, label="completely-different")
        assert cell_key(a, 3) == cell_key(b, 3)

    def test_scenario_seed_is_neutralised(self, tiny_scenario):
        # The run seed is what executes; the scenario's own seed must not
        # split otherwise-identical cells.
        reseeded = tiny_scenario.with_overrides(seed=99)
        a = make_spec(tiny_scenario)
        b = make_spec(reseeded)
        assert cell_key(a, 3) == cell_key(b, 3)

    def test_policy_parameters_enter_the_key(self, tiny_scenario):
        a = make_spec(tiny_scenario, policy="periodic:period=2")
        b = make_spec(tiny_scenario, policy="periodic:period=3")
        assert cell_key(a, 3) != cell_key(b, 3)

    def test_horizon_enters_the_key(self, tiny_scenario):
        a = make_spec(tiny_scenario)
        b = make_spec(tiny_scenario, num_slots=25)
        assert cell_key(a, 3) != cell_key(b, 3)

    def test_opaque_policy_is_unaddressable(self, tiny_scenario):
        from repro.baselines.caching import PeriodicUpdatePolicy

        spec = make_spec(tiny_scenario, policy=PeriodicUpdatePolicy(period=2))
        assert spec_payload(spec) is None
        assert spec_hash(spec) is None
        assert cell_key(spec, 3) is None

    def test_policy_spec_and_name_agree(self, tiny_scenario):
        by_name = make_spec(tiny_scenario, policy="periodic:period=2")
        by_spec = make_spec(
            tiny_scenario, policy=PolicySpec("periodic", {"period": 2})
        )
        assert cell_key(by_name, 3) == cell_key(by_spec, 3)

    def test_metrics_mode_enters_the_key(self, tiny_scenario):
        # Conservative: summary-mode output is byte-identical, but traces
        # and memory behaviour differ, so the key keeps them apart.
        a = make_spec(tiny_scenario, metrics="full")
        b = make_spec(tiny_scenario, metrics="summary")
        assert cell_key(a, 3) != cell_key(b, 3)


class TestRoundTrip:
    def test_put_get_is_bit_identical(self, tiny_scenario, tmp_path):
        spec = make_spec(tiny_scenario)
        record = make_record(spec, 3)
        with RunStore(str(tmp_path / "runs")) as store:
            assert store.put(spec, 3, record)
            loaded = store.get(spec, 3)
        assert loaded is not None
        assert loaded.matches(record)
        assert loaded.trace.dtype == record.trace.dtype

    def test_float_summaries_roundtrip_repr_exact(self, tiny_scenario, tmp_path):
        spec = make_spec(tiny_scenario)
        value = 0.1 + 0.2  # classic repr-sensitive float
        record = make_record(spec, 3, value=value, trace=False)
        with RunStore(str(tmp_path / "runs")) as store:
            store.put(spec, 3, record)
            loaded = store.get(spec, 3)
        assert loaded.summary["total_reward"] == value

    def test_summary_key_order_is_preserved(self, tiny_scenario, tmp_path):
        # Aggregate column order follows summary insertion order; a store
        # hit must not silently alphabetise it.
        spec = make_spec(tiny_scenario)
        record = RunRecord(
            label=spec.label,
            seed=3,
            kind=spec.kind,
            summary={"zebra": 1.0, "alpha": 2.0, "mid": 3.0},
        )
        with RunStore(str(tmp_path / "runs")) as store:
            store.put(spec, 3, record)
            loaded = store.get(spec, 3)
        assert list(loaded.summary) == ["zebra", "alpha", "mid"]

    def test_get_uses_requesting_label_and_kind(self, tiny_scenario, tmp_path):
        spec = make_spec(tiny_scenario, label="original")
        record = make_record(spec, 3)
        relabelled = make_spec(tiny_scenario, label="renamed")
        with RunStore(str(tmp_path / "runs")) as store:
            store.put(spec, 3, record)
            loaded = store.get(relabelled, 3)
        assert loaded is not None
        assert loaded.label == "renamed"

    def test_missing_cell_is_a_miss(self, tiny_scenario, tmp_path):
        spec = make_spec(tiny_scenario)
        with RunStore(str(tmp_path / "runs")) as store:
            assert store.get(spec, 3) is None
            assert store.stats.misses == 1
            assert store.stats.hits == 0

    def test_opaque_spec_bypasses_the_store(self, tiny_scenario, tmp_path):
        from repro.baselines.caching import PeriodicUpdatePolicy

        spec = make_spec(tiny_scenario, policy=PeriodicUpdatePolicy(period=2))
        record = make_record(spec, 3)
        with RunStore(str(tmp_path / "runs")) as store:
            assert not store.put(spec, 3, record)
            assert store.get(spec, 3) is None
            assert len(store) == 0

    def test_traceless_record_roundtrips(self, tiny_scenario, tmp_path):
        spec = make_spec(tiny_scenario, kind="joint", policy="periodic",
                         service_policy="lyapunov")
        record = make_record(spec, 3, trace=False)
        with RunStore(str(tmp_path / "runs")) as store:
            store.put(spec, 3, record)
            loaded = store.get(spec, 3)
        assert loaded.matches(record)
        assert loaded.trace is None

    def test_upsert_replaces_the_cell(self, tiny_scenario, tmp_path):
        spec = make_spec(tiny_scenario)
        with RunStore(str(tmp_path / "runs")) as store:
            store.put(spec, 3, make_record(spec, 3, value=1.0))
            store.put(spec, 3, make_record(spec, 3, value=2.0))
            assert len(store) == 1
            assert store.get(spec, 3).summary["total_reward"] == 2.0


class TestStatsAndMaintenance:
    def test_session_counters(self, tiny_scenario, tmp_path):
        spec = make_spec(tiny_scenario)
        with RunStore(str(tmp_path / "runs")) as store:
            store.get(spec, 3)
            store.put(spec, 3, make_record(spec, 3))
            store.get(spec, 3)
            stats = store.stats
            assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)
            assert stats.lookups == 2
            assert stats.hit_rate == 0.5
            assert store.store_stats()["cells"] == 1

    def test_rows_filtering(self, tiny_scenario, tmp_path):
        cells = [
            ("fig1a", "periodic:period=2", 0),
            ("fig1a", "periodic:period=2", 1),
            # Distinct configuration: same label+seed would otherwise share
            # a cell key with fig1a (labels are not part of the identity).
            ("fig1b", "periodic:period=3", 0),
        ]
        with RunStore(str(tmp_path / "runs")) as store:
            for label, policy, seed in cells:
                spec = make_spec(tiny_scenario, label=label, policy=policy)
                store.put(spec, seed, make_record(spec, seed))
            assert len(store.rows()) == 3
            assert len(store.rows(label="fig1a")) == 2
            assert len(store.rows(label="fig1*")) == 3
            assert len(store.rows(kind="service")) == 0
            assert len(store.rows(limit=2)) == 2
            row = store.rows(label="fig1b")[0]
            assert row["label"] == "fig1b"
            assert row["kind"] == "cache"
            assert "total_reward" in row and "package_version" in row

    def test_clear_removes_cells_and_blobs(self, tiny_scenario, tmp_path):
        spec = make_spec(tiny_scenario)
        with RunStore(str(tmp_path / "runs")) as store:
            store.put(spec, 3, make_record(spec, 3))
            assert store.clear() == 1
            assert len(store) == 0
            assert not any(
                name.endswith(".npz") for name in os.listdir(store.blob_directory)
            )

    def test_vacuum_collects_orphans(self, tiny_scenario, tmp_path):
        spec = make_spec(tiny_scenario)
        with RunStore(str(tmp_path / "runs")) as store:
            store.put(spec, 3, make_record(spec, 3))
            orphan = os.path.join(store.blob_directory, "deadbeef.npz")
            stale = os.path.join(store.blob_directory, "crashed.tmp")
            for path in (orphan, stale):
                with open(path, "wb") as handle:
                    handle.write(b"junk")
            report = store.vacuum()
            assert report == {"orphan_blobs": 1, "stale_tmp_files": 1}
            assert not os.path.exists(orphan)
            assert not os.path.exists(stale)
            # The live cell survived the vacuum.
            assert store.get(spec, 3) is not None


class TestResolveStore:
    def test_none_without_env_is_off(self):
        assert resolve_store(None) is None

    def test_none_with_env_opt_in(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUN_STORE_DIR", str(tmp_path / "runs"))
        store = resolve_store(None)
        assert store is not None
        assert store.directory == str(tmp_path / "runs")
        store.close()

    def test_false_always_disables(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUN_STORE_DIR", str(tmp_path / "runs"))
        assert resolve_store(False) is None

    def test_true_opens_default_location(self):
        store = resolve_store(True)
        assert store is not None
        assert store.directory == DEFAULT_DIRECTORY
        store.close()

    def test_true_honours_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_STORE", "0")
        assert resolve_store(True) is None

    def test_directory_string(self, tmp_path):
        store = resolve_store(str(tmp_path / "runs"))
        assert store.directory == str(tmp_path / "runs")
        store.close()

    def test_instance_passes_through(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        assert resolve_store(store) is store
        store.close()

    def test_invalid_type_rejected(self):
        with pytest.raises(ValidationError):
            resolve_store(42)

    def test_constructor_requires_enabled_env(self):
        with pytest.raises(ValidationError):
            RunStore()  # opt-in env is unset

    def test_database_created_lazily(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        # Construction alone must not touch the filesystem.
        assert not os.path.exists(store.directory)
        store.close()


class TestMultihopCells:
    """Multihop runs must address distinct cells and round-trip exactly."""

    def test_kind_enters_the_key(self, tiny_scenario):
        cache = make_spec(tiny_scenario, policy="mdp")
        multihop = make_spec(tiny_scenario, policy="mdp", kind="multihop")
        assert cell_key(cache, 3) is not None
        assert cell_key(cache, 3) != cell_key(multihop, 3)

    def test_topology_kind_enters_the_key(self, tiny_scenario):
        star = make_spec(
            tiny_scenario.with_overrides(topology_kind="star"),
            policy="lce",
            kind="multihop",
        )
        ring = make_spec(
            tiny_scenario.with_overrides(topology_kind="ring"),
            policy="lce",
            kind="multihop",
        )
        assert cell_key(star, 3) != cell_key(ring, 3)

    def test_onpath_policy_is_addressable(self, tiny_scenario):
        spec = make_spec(
            tiny_scenario, policy="probcache:t_tw=10", kind="multihop"
        )
        assert spec_payload(spec) is not None
        assert cell_key(spec, 3) is not None

    def test_onpath_parameters_enter_the_key(self, tiny_scenario):
        a = make_spec(tiny_scenario, policy="probcache:t_tw=10", kind="multihop")
        b = make_spec(tiny_scenario, policy="probcache:t_tw=20", kind="multihop")
        assert cell_key(a, 3) != cell_key(b, 3)

    def test_onpath_policy_unaddressable_under_cache_kind(self, tiny_scenario):
        # Role coercion still applies outside multihop: an on-path name is
        # not a caching policy, so the cell bypasses the store.
        spec = make_spec(tiny_scenario, policy="lce")
        assert spec_payload(spec) is None

    def test_round_trip(self, tmp_path, tiny_scenario):
        spec = make_spec(tiny_scenario, policy="lce", kind="multihop")
        record = RunRecord(
            label=spec.label,
            seed=3,
            kind="multihop",
            summary={"hit_ratio": 0.5, "mean_hops": 1.25, "policy": "lce"},
            trace=np.linspace(0.0, 9.0, 7),
        )
        with RunStore(str(tmp_path / "runs")) as store:
            store.put(spec, 3, record)
            loaded = store.get(spec, 3)
        assert loaded is not None
        assert loaded.matches(record)
