"""Crash-resume integration tests for store-backed grids (ISSUE satellite).

The scenario under test is the one the run store exists for: a long sweep
dies mid-flight, the user re-runs the same command, and the second pass
must (a) recompute *only* the missing cells — instrumented through the
dispatch stats — and (b) merge cached and fresh records into a batch
bit-identical to an uninterrupted cold run.
"""

from __future__ import annotations

import pytest

import repro.runtime.runner as runner_module
from repro.runtime.runner import ExperimentRunner, _execute_batch_timed
from repro.runtime.spec import ExperimentSpec
from repro.runtime.store import RunStore
from repro.sim.scenario import ScenarioConfig

NUM_SEEDS = 26  # 4 specs x 26 seeds = 104 cells: past the 100-cell bar.


@pytest.fixture(scope="module")
def grid():
    scenario = ScenarioConfig.small(seed=11, num_slots=20)
    return [
        ExperimentSpec(
            kind="cache",
            scenario=scenario,
            policy=policy,
            seed=7 + index,
            num_seeds=NUM_SEEDS,
            label=label,
        )
        for index, (label, policy) in enumerate(
            [
                ("p2", "periodic:period=2"),
                ("p3", "periodic:period=3"),
                ("always", "always"),
                ("never", "never"),
            ]
        )
    ]


@pytest.fixture(scope="module")
def cold(grid):
    """The uninterrupted reference run, computed once without a store."""
    return ExperimentRunner(workers=1).run_grid(grid, store=False)


class _CrashAfter:
    """Wrapper around the batch task that dies after *limit* completions."""

    def __init__(self, limit):
        self.limit = limit
        self.calls = 0

    def __call__(self, task):
        if self.calls >= self.limit:
            raise RuntimeError("simulated mid-sweep crash")
        self.calls += 1
        return _execute_batch_timed(task)


class TestCrashResume:
    def test_interrupted_sweep_resumes_bit_identically(
        self, grid, cold, tmp_path, monkeypatch
    ):
        store_dir = str(tmp_path / "runs")
        assert len(cold) == 4 * NUM_SEEDS >= 100

        # --- Pass 1: the sweep dies after 2 of its 4 task groups. ---------
        crash = _CrashAfter(limit=2)
        monkeypatch.setattr(runner_module, "_execute_batch_timed", crash)
        runner = ExperimentRunner(workers=1)
        with pytest.raises(RuntimeError, match="simulated mid-sweep crash"):
            runner.run_grid(grid, store=store_dir)
        monkeypatch.undo()

        # Finished task groups persisted incrementally, before the crash.
        with RunStore(store_dir) as store:
            survivors = len(store)
        assert survivors == 2 * NUM_SEEDS

        # --- Pass 2: the same command again. ------------------------------
        runner = ExperimentRunner(workers=1)
        resumed = runner.run_grid(grid, store=store_dir)
        report = runner.last_dispatch_stats["run_store"]
        assert report["cells_total"] == 4 * NUM_SEEDS
        assert report["cells_cached"] == survivors
        assert report["cells_dispatched"] == 4 * NUM_SEEDS - survivors
        # Only the two unfinished groups went back to the workers.
        assert runner.last_dispatch_stats["tasks"] == 2

        # The merged batch is indistinguishable from the cold run.
        assert resumed.matches(cold)
        assert resumed.aggregate() == cold.aggregate()

        # --- Pass 3: fully warm — nothing dispatches at all. --------------
        runner = ExperimentRunner(workers=1)
        warm = runner.run_grid(grid, store=store_dir)
        report = runner.last_dispatch_stats["run_store"]
        assert report["cells_cached"] == 4 * NUM_SEEDS
        assert report["cells_dispatched"] == 0
        assert report["hit_rate"] == 1.0
        assert runner.last_dispatch_stats["tasks"] == 0
        assert warm.matches(cold)

    def test_new_grid_point_dispatches_only_its_own_cells(
        self, grid, cold, tmp_path
    ):
        store_dir = str(tmp_path / "runs")
        runner = ExperimentRunner(workers=1)
        runner.run_grid(grid, store=store_dir)

        extended = list(grid) + [
            ExperimentSpec(
                kind="cache",
                scenario=grid[0].scenario,
                policy="periodic:period=4",
                seed=99,
                num_seeds=NUM_SEEDS,
                label="p4",
            )
        ]
        runner = ExperimentRunner(workers=1)
        batch = runner.run_grid(extended, store=store_dir)
        report = runner.last_dispatch_stats["run_store"]
        assert report["cells_total"] == 5 * NUM_SEEDS
        assert report["cells_cached"] == 4 * NUM_SEEDS
        assert report["cells_dispatched"] == NUM_SEEDS
        # The cached prefix of the extended grid is still the cold batch.
        prefix = batch.records[: len(cold)]
        assert all(a.matches(b) for a, b in zip(prefix, cold.records))

    def test_seed_unbatched_resume_matches(self, grid, cold, tmp_path, monkeypatch):
        # Chunk-of-one dispatch exercises the per-cell persistence path.
        store_dir = str(tmp_path / "runs")
        crash = _CrashAfter(limit=30)
        monkeypatch.setattr(runner_module, "_execute_batch_timed", crash)
        runner = ExperimentRunner(workers=1)
        with pytest.raises(RuntimeError):
            runner.run_grid(grid, store=store_dir, seed_batching=False)
        monkeypatch.undo()
        with RunStore(store_dir) as store:
            assert len(store) == 30

        runner = ExperimentRunner(workers=1)
        resumed = runner.run_grid(grid, store=store_dir, seed_batching=False)
        report = runner.last_dispatch_stats["run_store"]
        assert report["cells_cached"] == 30
        assert report["cells_dispatched"] == 4 * NUM_SEEDS - 30
        assert resumed.matches(cold)


class TestStoreKnobs:
    def test_env_opt_in_enables_the_store(self, grid, cold, tmp_path, monkeypatch):
        store_dir = str(tmp_path / "runs")
        monkeypatch.setenv("REPRO_RUN_STORE_DIR", store_dir)
        runner = ExperimentRunner(workers=1)
        first = runner.run_grid(grid[:1])
        assert runner.last_dispatch_stats["run_store"]["cells_dispatched"] == NUM_SEEDS
        runner = ExperimentRunner(workers=1)
        second = runner.run_grid(grid[:1])
        assert runner.last_dispatch_stats["run_store"]["cells_cached"] == NUM_SEEDS
        assert first.matches(second)

    def test_kill_switch_beats_explicit_store(self, grid, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_STORE", "0")
        runner = ExperimentRunner(workers=1)
        runner.run_grid(grid[:1], store=True)
        assert runner.last_dispatch_stats is not None
        assert "run_store" not in runner.last_dispatch_stats

    def test_per_spec_opt_out_always_recomputes(self, grid, tmp_path):
        from dataclasses import replace

        store_dir = str(tmp_path / "runs")
        runner = ExperimentRunner(workers=1)
        opted_out = replace(grid[0], store=False)
        runner.run_grid([opted_out, grid[1]], store=store_dir)
        # Only the participating spec's cells landed in the store.
        with RunStore(store_dir) as store:
            assert len(store) == NUM_SEEDS
        runner = ExperimentRunner(workers=1)
        runner.run_grid([opted_out, grid[1]], store=store_dir)
        report = runner.last_dispatch_stats["run_store"]
        assert report["cells_cached"] == NUM_SEEDS
        assert report["cells_dispatched"] == NUM_SEEDS

    def test_per_spec_opt_in_without_grid_store(
        self, grid, tmp_path, monkeypatch
    ):
        from dataclasses import replace

        monkeypatch.setenv("REPRO_RUN_STORE_DIR", str(tmp_path / "runs"))
        monkeypatch.setenv("REPRO_RUN_STORE", "0")
        # Kill switch off -> even a per-spec opt-in stays cold.
        runner = ExperimentRunner(workers=1)
        runner.run_grid([replace(grid[0], store=True)])
        assert "run_store" not in runner.last_dispatch_stats

        monkeypatch.delenv("REPRO_RUN_STORE")
        # REPRO_RUN_STORE_DIR alone would enable globally; drop it and use
        # the spec-level opt-in against the default location instead.
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("REPRO_RUN_STORE_DIR")
        runner = ExperimentRunner(workers=1)
        runner.run_grid([replace(grid[0], store=True)])
        assert runner.last_dispatch_stats["run_store"]["cells_dispatched"] == NUM_SEEDS
        runner = ExperimentRunner(workers=1)
        runner.run_grid([replace(grid[0], store=True)])
        assert runner.last_dispatch_stats["run_store"]["cells_cached"] == NUM_SEEDS


class TestSimulateWriteThrough:
    def test_simulate_warms_the_grid_store(self, tmp_path):
        from repro import simulate

        scenario = ScenarioConfig.small(seed=11, num_slots=20)
        store_dir = str(tmp_path / "runs")
        simulate(scenario, "periodic:period=2", store=store_dir)
        with RunStore(store_dir) as store:
            assert len(store) == 1

        # The façade run and the grid cell share one content address.
        spec = ExperimentSpec(
            kind="cache",
            scenario=scenario,
            policy="periodic:period=2",
            seed=11,
            num_seeds=1,
        )
        runner = ExperimentRunner(workers=1)
        warm = runner.run_grid([spec], store=store_dir)
        assert runner.last_dispatch_stats["run_store"]["cells_cached"] == 1
        cold = ExperimentRunner(workers=1).run_grid([spec], store=False)
        assert warm.matches(cold)

    def test_simulate_without_store_writes_nothing(self, tmp_path, monkeypatch):
        from repro import simulate

        monkeypatch.chdir(tmp_path)
        scenario = ScenarioConfig.small(seed=11, num_slots=20)
        simulate(scenario, "periodic:period=2")
        assert not (tmp_path / ".repro_cache").exists()

    def test_simulate_multi_seed_store_roundtrip(self, tmp_path):
        from repro import simulate

        scenario = ScenarioConfig.small(seed=11, num_slots=20)
        store_dir = str(tmp_path / "runs")
        results = simulate(scenario, "periodic:period=2", seeds=4, store=store_dir)
        assert len(results) == 4
        with RunStore(store_dir) as store:
            assert len(store) == 4

        spec = ExperimentSpec(
            kind="cache",
            scenario=scenario,
            policy="periodic:period=2",
            seed=11,
            num_seeds=4,
        )
        runner = ExperimentRunner(workers=1)
        warm = runner.run_grid([spec], store=store_dir)
        assert runner.last_dispatch_stats["run_store"]["cells_cached"] == 4
        cold = ExperimentRunner(workers=1).run_grid([spec], store=False)
        assert warm.matches(cold)
