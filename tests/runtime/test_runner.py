"""Tests for repro.runtime.runner (the batched parallel experiment runner).

The load-bearing property is determinism: the same grid must produce the
bit-identical :class:`BatchResult` for every worker count, and the derived
per-run seeds must never collide.  Grids here use tiny scenarios and cheap
policies so the process-pool cases stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sweep import (
    lyapunov_policy_factory,
    mdp_policy_factory,
    v_sweep,
    weight_sweep,
)
from repro.baselines.caching import PeriodicUpdatePolicy, RandomUpdatePolicy
from repro.exceptions import ValidationError
from repro.runtime.runner import (
    BatchResult,
    ExperimentRunner,
    RunRecord,
    RunSpec,
    expand_seeds,
    execute_spec,
    expand_workloads,
)
from repro.sim.scenario import ScenarioConfig
from repro.utils.rng import spawn_run_seeds


def make_periodic_policy(scenario):
    """Module-level factory so the spec pickles into pool workers."""
    return PeriodicUpdatePolicy(period=2)


@pytest.fixture(scope="module")
def tiny_scenario():
    return ScenarioConfig.small(seed=11, num_slots=30)


def cache_grid(tiny_scenario, labels=("a", "b")):
    return [
        RunSpec(
            kind="cache",
            scenario=tiny_scenario,
            policy=make_periodic_policy,
            seed=7 + index,
            label=label,
        )
        for index, label in enumerate(labels)
    ]


class TestSeedSpawning:
    def test_first_seed_is_base(self):
        assert spawn_run_seeds(42, 5)[0] == 42

    def test_deterministic(self):
        assert spawn_run_seeds(3, 8) == spawn_run_seeds(3, 8)

    def test_distinct(self):
        seeds = spawn_run_seeds(0, 64)
        assert len(set(seeds)) == 64

    def test_non_negative_ints(self):
        assert all(isinstance(s, int) and s >= 0 for s in spawn_run_seeds(1, 16))

    def test_different_bases_differ(self):
        assert spawn_run_seeds(0, 4)[1:] != spawn_run_seeds(1, 4)[1:]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValidationError):
            spawn_run_seeds(-1, 2)
        with pytest.raises(ValidationError):
            spawn_run_seeds(0, 0)


class TestRunSpec:
    def test_invalid_kind_rejected(self, tiny_scenario):
        with pytest.raises(ValidationError):
            RunSpec(kind="nope", scenario=tiny_scenario, policy=make_periodic_policy)

    def test_joint_requires_service_policy(self, tiny_scenario):
        with pytest.raises(ValidationError):
            RunSpec(kind="joint", scenario=tiny_scenario, policy=make_periodic_policy)

    def test_expand_seeds_single_is_identity(self, tiny_scenario):
        specs = cache_grid(tiny_scenario)
        assert expand_seeds(specs, 1) == specs

    def test_expand_seeds_replicates(self, tiny_scenario):
        expanded = expand_seeds(cache_grid(tiny_scenario), 3)
        assert len(expanded) == 6
        assert [spec.label for spec in expanded] == ["a"] * 3 + ["b"] * 3
        assert len({(spec.label, spec.seed) for spec in expanded}) == 6


class TestExecuteSpec:
    def test_matches_direct_simulation(self, tiny_scenario):
        from repro.sim.simulator import CacheSimulator

        spec = cache_grid(tiny_scenario)[0]
        record = execute_spec(spec)
        direct = CacheSimulator(
            tiny_scenario.with_overrides(seed=spec.seed), make_periodic_policy(None)
        ).run()
        assert record.summary == direct.summary()
        assert np.array_equal(record.trace, direct.cumulative_reward)

    def test_policy_instance_not_mutated(self, tiny_scenario):
        # A stochastic policy instance shared by several specs must be
        # deep-copied per run, so serial re-use equals parallel pickling.
        policy = RandomUpdatePolicy(rate=0.5, rng=99)
        spec = RunSpec(kind="cache", scenario=tiny_scenario, policy=policy, seed=1)
        first = execute_spec(spec)
        second = execute_spec(spec)
        assert first.matches(second)


class TestRunnerDeterminism:
    def test_serial_and_parallel_batches_identical(self, tiny_scenario):
        specs = expand_seeds(cache_grid(tiny_scenario), 2)
        serial = ExperimentRunner(workers=1).run(specs)
        parallel = ExperimentRunner(workers=4).run(specs)
        assert serial.matches(parallel)
        assert serial.aggregate() == parallel.aggregate()

    def test_service_grid_across_worker_counts(self, tiny_scenario):
        specs = [
            RunSpec(
                kind="service",
                scenario=tiny_scenario,
                policy=lyapunov_policy_factory,
                seed=5,
                label="lyapunov",
            )
        ]
        batches = [
            ExperimentRunner(workers=workers).run_grid(specs, num_seeds=3)
            for workers in (1, 2, 4)
        ]
        assert batches[0].matches(batches[1])
        assert batches[1].matches(batches[2])

    def test_child_seeds_do_not_collide(self, tiny_scenario):
        batch = ExperimentRunner(workers=1).run_grid(
            cache_grid(tiny_scenario, labels=("a",)), num_seeds=16
        )
        assert len(set(batch.seeds())) == 16

    def test_different_seeds_give_different_results(self, tiny_scenario):
        batch = ExperimentRunner(workers=1).run_grid(
            cache_grid(tiny_scenario, labels=("a",)), num_seeds=4
        )
        rewards = [record.summary["total_reward"] for record in batch.records]
        assert len(set(rewards)) > 1

    def test_empty_grid_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentRunner(workers=1).run([])


class TestSeedBatchedDispatch:
    """run_grid's seed-batched execution must be invisible in the results."""

    def test_cache_grid_batched_matches_per_run(self, tiny_scenario):
        specs = cache_grid(tiny_scenario)
        batched = ExperimentRunner(workers=1).run_grid(specs, num_seeds=3)
        per_run = ExperimentRunner(workers=1).run_grid(
            specs, num_seeds=3, seed_batching=False
        )
        assert batched.matches(per_run)

    def test_all_kinds_batched_match_per_run(self, tiny_scenario):
        specs = [
            RunSpec(kind="cache", scenario=tiny_scenario,
                    policy=mdp_policy_factory, seed=7, label="c"),
            RunSpec(kind="service", scenario=tiny_scenario,
                    policy=lyapunov_policy_factory, seed=5, label="s"),
            RunSpec(kind="joint", scenario=tiny_scenario,
                    policy=mdp_policy_factory,
                    service_policy=lyapunov_policy_factory, seed=2, label="j"),
        ]
        batched = ExperimentRunner(workers=1).run_grid(specs, num_seeds=3)
        per_run = ExperimentRunner(workers=1).run_grid(
            specs, num_seeds=3, seed_batching=False
        )
        assert batched.matches(per_run)

    def test_batched_identical_across_worker_counts(self, tiny_scenario):
        # Worker counts change how seed groups are chunked across the pool;
        # the records must not notice.
        specs = cache_grid(tiny_scenario)
        batches = [
            ExperimentRunner(workers=workers).run_grid(specs, num_seeds=4)
            for workers in (1, 2, 4)
        ]
        assert batches[0].matches(batches[1])
        assert batches[1].matches(batches[2])

    def test_reference_specs_batch_through_fallback(self, tiny_scenario):
        from dataclasses import replace

        specs = [replace(spec, reference=True) for spec in cache_grid(tiny_scenario)]
        batched = ExperimentRunner(workers=1).run_grid(specs, num_seeds=2)
        per_run = ExperimentRunner(workers=1).run_grid(
            specs, num_seeds=2, seed_batching=False
        )
        assert batched.matches(per_run)

    def test_stochastic_instance_policy_batches_identically(self, tiny_scenario):
        specs = [
            RunSpec(
                kind="cache",
                scenario=tiny_scenario,
                policy=RandomUpdatePolicy(rate=0.5, rng=99),
                seed=1,
                label="random",
            )
        ]
        batched = ExperimentRunner(workers=1).run_grid(specs, num_seeds=3)
        per_run = ExperimentRunner(workers=1).run_grid(
            specs, num_seeds=3, seed_batching=False
        )
        assert batched.matches(per_run)


class TestAggregation:
    def test_single_seed_rows_have_no_ci(self, tiny_scenario):
        rows = ExperimentRunner(workers=1).run(cache_grid(tiny_scenario)).aggregate()
        assert [row["label"] for row in rows] == ["a", "b"]
        assert all(row["num_seeds"] == 1 for row in rows)
        assert not any(key.endswith("_ci") for row in rows for key in row)

    def test_multi_seed_rows_report_mean_and_ci(self, tiny_scenario):
        batch = ExperimentRunner(workers=1).run_grid(
            cache_grid(tiny_scenario, labels=("a",)), num_seeds=5
        )
        (row,) = batch.aggregate()
        rewards = [record.summary["total_reward"] for record in batch.records]
        assert row["num_seeds"] == 5
        assert row["total_reward"] == pytest.approx(float(np.mean(rewards)))
        assert row["total_reward_ci"] >= 0.0
        # Non-numeric summary entries (policy name) survive aggregation.
        assert row["policy"] == batch.records[0].summary["policy"]

    def test_labels_preserve_grid_order(self, tiny_scenario):
        batch = ExperimentRunner(workers=1).run_grid(
            cache_grid(tiny_scenario, labels=("z", "a", "m")), num_seeds=2
        )
        assert batch.labels() == ["z", "a", "m"]

    def test_single_seed_degenerate_ci(self, tiny_scenario):
        # One record per label: the mean is the value itself, and no
        # degenerate zero-width CI column may appear for any confidence.
        batch = ExperimentRunner(workers=1).run(cache_grid(tiny_scenario))
        for confidence in (0.5, 0.95, 0.99):
            rows = batch.aggregate(confidence=confidence)
            for row, record in zip(rows, batch.records):
                assert row["num_seeds"] == 1
                assert row["total_reward"] == record.summary["total_reward"]
                assert not any(key.endswith("_ci") for key in row)

    def test_duplicate_labels_merge_into_one_row(self, tiny_scenario):
        # Two specs sharing a label (different base seeds) aggregate as one
        # grid point: a single row whose num_seeds spans both specs' records.
        specs = [
            RunSpec(kind="cache", scenario=tiny_scenario,
                    policy=make_periodic_policy, seed=seed, label="shared")
            for seed in (7, 8)
        ]
        batch = ExperimentRunner(workers=1).run_grid(specs, num_seeds=2)
        assert len(batch) == 4
        (row,) = batch.aggregate()
        assert row["label"] == "shared"
        assert row["num_seeds"] == 4
        rewards = [record.summary["total_reward"] for record in batch.records]
        assert row["total_reward"] == pytest.approx(float(np.mean(rewards)))

    def test_non_default_confidence_scales_ci(self, tiny_scenario):
        batch = ExperimentRunner(workers=1).run_grid(
            cache_grid(tiny_scenario, labels=("a",)), num_seeds=5
        )
        half_widths = {
            confidence: batch.aggregate(confidence=confidence)[0][
                "total_reward_ci"
            ]
            for confidence in (0.5, 0.95, 0.99)
        }
        # Means are confidence-independent; half-widths widen monotonically.
        means = {
            confidence: batch.aggregate(confidence=confidence)[0]["total_reward"]
            for confidence in (0.5, 0.95, 0.99)
        }
        assert len(set(means.values())) == 1
        assert half_widths[0.5] < half_widths[0.95] < half_widths[0.99]


class TestSweepsThroughRunner:
    def test_weight_sweep_identical_across_worker_counts(self):
        config = ScenarioConfig.small(seed=2, num_slots=30)
        serial = weight_sweep([0.5, 2.0], config=config, num_seeds=2, workers=1)
        parallel = weight_sweep([0.5, 2.0], config=config, num_seeds=2, workers=4)
        assert serial == parallel

    def test_v_sweep_identical_across_worker_counts(self):
        config = ScenarioConfig.small(seed=2, num_slots=30)
        serial = v_sweep([1.0, 10.0], config=config, num_seeds=2, workers=1)
        parallel = v_sweep([1.0, 10.0], config=config, num_seeds=2, workers=3)
        assert serial == parallel

    def test_single_seed_matches_legacy_rows(self):
        # num_seeds=1 must reproduce the pre-runner behaviour exactly: same
        # seed, same simulation, same row values, no extra columns.
        config = ScenarioConfig.small(seed=2, num_slots=30)
        rows = weight_sweep([0.5], config=config)
        assert set(rows[0]) == {
            "weight",
            "mean_age",
            "violation_fraction",
            "total_cost",
            "total_updates",
            "total_reward",
        }


class TestRunRecordMatching:
    def test_matches_requires_identical_traces(self):
        a = RunRecord(label="x", seed=0, kind="cache", summary={"m": 1.0},
                      trace=np.asarray([1.0, 2.0]))
        b = RunRecord(label="x", seed=0, kind="cache", summary={"m": 1.0},
                      trace=np.asarray([1.0, 2.5]))
        assert not a.matches(b)
        assert a.matches(a)

    def test_batch_matches_detects_reordering(self):
        a = RunRecord(label="x", seed=0, kind="cache", summary={"m": 1.0})
        b = RunRecord(label="y", seed=1, kind="cache", summary={"m": 2.0})
        assert not BatchResult([a, b]).matches(BatchResult([b, a]))


class TestWorkloadGrids:
    WORKLOADS = ["stationary", "drift:period=10", "flash-crowd:burst_prob=0.2"]

    def test_expand_workloads_crosses_specs_and_workloads(self, tiny_scenario):
        specs = cache_grid(tiny_scenario)
        grid = expand_workloads(specs, self.WORKLOADS)
        assert len(grid) == len(specs) * len(self.WORKLOADS)
        assert [spec.label for spec in grid[:3]] == [
            "a|stationary",
            "a|drift(period=10)",
            "a|flash-crowd(burst_prob=0.2)",
        ]
        from repro.workloads import WorkloadSpec

        assert grid[1].scenario.workload == WorkloadSpec.parse("drift:period=10")
        # The original specs are untouched.
        assert specs[0].scenario.workload == WorkloadSpec()

    def test_expand_workloads_rejects_empty_inputs(self, tiny_scenario):
        with pytest.raises(ValidationError):
            expand_workloads([], self.WORKLOADS)
        with pytest.raises(ValidationError):
            expand_workloads(cache_grid(tiny_scenario), [])

    def test_scenarios_by_workloads_grid_runs_end_to_end(self):
        # The acceptance grid: scenarios x workloads x seeds through run_grid.
        scenarios = [
            ("small", ScenarioConfig.small(seed=3, num_slots=25)),
            ("small-poisson", ScenarioConfig.small(
                seed=5, num_slots=25, arrival_kind="poisson", arrival_rate=1.5
            )),
        ]
        specs = [
            RunSpec(
                kind="service",
                scenario=scenario,
                policy=lyapunov_policy_factory,
                seed=scenario.seed,
                label=label,
            )
            for label, scenario in scenarios
        ]
        grid = expand_workloads(specs, self.WORKLOADS)
        batch = ExperimentRunner(workers=1).run_grid(grid, num_seeds=2)
        assert len(batch) == len(grid) * 2
        assert len(batch.labels()) == len(grid)
        rows = batch.aggregate()
        assert all(row["num_seeds"] == 2 for row in rows)

    def test_workload_grid_identical_across_worker_counts(self, tiny_scenario):
        grid = expand_workloads(cache_grid(tiny_scenario), self.WORKLOADS[:2])
        serial = ExperimentRunner(workers=1).run_grid(grid, num_seeds=2)
        parallel = ExperimentRunner(workers=3).run_grid(grid, num_seeds=2)
        assert serial.matches(parallel)
