"""Tests for repro.core.online (model-free Q-learning caching policy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.online import OnlineLearningConfig, QLearningCachingPolicy
from repro.core.policies import CacheObservation
from repro.exceptions import ValidationError
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import CacheSimulator
from repro.baselines.caching import NeverUpdatePolicy


def make_observation(ages, costs=None, time_slot=0):
    ages = np.asarray(ages, dtype=float)
    if costs is None:
        costs = np.full_like(ages, 0.5)
    return CacheObservation(
        time_slot=time_slot,
        ages=ages,
        max_ages=np.full_like(ages, 6.0),
        popularity=np.full_like(ages, 1.0 / ages.shape[1]),
        update_costs=np.asarray(costs, dtype=float),
    )


class TestOnlineLearningConfig:
    def test_defaults_valid(self):
        OnlineLearningConfig().validate()

    def test_bad_learning_rate_rejected(self):
        with pytest.raises(ValidationError):
            OnlineLearningConfig(learning_rate=0.0).validate()

    def test_bad_epsilon_rejected(self):
        with pytest.raises(ValidationError):
            OnlineLearningConfig(epsilon=2.0).validate()

    def test_bad_ceiling_rejected(self):
        with pytest.raises(ValidationError):
            OnlineLearningConfig(age_ceiling=0).validate()


class TestQLearningCachingPolicy:
    def test_actions_respect_constraint(self):
        policy = QLearningCachingPolicy(rng=0)
        actions = policy.decide(make_observation(np.full((3, 4), 5.0)))
        assert actions.shape == (3, 4)
        assert np.all(actions.sum(axis=1) <= 1)

    def test_learning_updates_accumulate(self):
        policy = QLearningCachingPolicy(rng=0)
        observation = make_observation(np.full((2, 2), 3.0))
        policy.decide(observation)
        assert policy.updates_applied == 0  # nothing to learn from yet
        policy.decide(make_observation(np.full((2, 2), 4.0), time_slot=1))
        assert policy.updates_applied == 4  # one update per (rsu, content)

    def test_epsilon_decays(self):
        config = OnlineLearningConfig(epsilon=0.5, epsilon_decay=0.9, min_epsilon=0.01)
        policy = QLearningCachingPolicy(config, rng=0)
        observation = make_observation(np.full((1, 2), 3.0))
        for _ in range(10):
            policy.decide(observation)
        assert policy.epsilon < 0.5
        assert policy.epsilon >= 0.01

    def test_reset_clears_learning(self):
        policy = QLearningCachingPolicy(rng=0)
        policy.decide(make_observation(np.full((1, 2), 3.0)))
        policy.decide(make_observation(np.full((1, 2), 4.0), time_slot=1))
        policy.reset()
        assert policy.updates_applied == 0
        with pytest.raises(ValidationError):
            policy.q_table(0, 0)

    def test_q_table_accessible_after_decide(self):
        policy = QLearningCachingPolicy(rng=0)
        policy.decide(make_observation(np.full((1, 2), 3.0)))
        table = policy.q_table(0, 1)
        assert table.shape == (policy._grid.num_levels, 2)

    def test_topology_change_drops_stale_experience(self):
        policy = QLearningCachingPolicy(rng=0)
        policy.decide(make_observation(np.full((1, 2), 3.0)))
        # Different shape on the next call: must not crash, must not learn.
        policy.decide(make_observation(np.full((2, 3), 3.0), time_slot=1))
        assert policy.updates_applied == 0

    def test_deterministic_given_seed(self):
        def run(seed):
            policy = QLearningCachingPolicy(rng=seed)
            observation = make_observation(np.full((2, 3), 5.0))
            return [policy.decide(observation).tolist() for _ in range(5)]

        assert run(3) == run(3)

    def test_learns_to_refresh_valuable_content(self):
        """After enough interaction, stale cheap-to-update content is refreshed."""
        config = OnlineLearningConfig(
            weight=5.0, epsilon=0.3, epsilon_decay=0.99, learning_rate=0.3
        )
        policy = QLearningCachingPolicy(config, rng=1)
        ages = np.full((1, 2), 1.0)
        for t in range(400):
            observation = make_observation(ages, costs=np.full((1, 2), 0.2), time_slot=t)
            actions = policy.decide(observation)
            ages = np.where(actions > 0, 1.0, np.minimum(ages + 1.0, 12.0))
        # The learned advantage of updating a maximally stale content must be
        # positive once learning has converged.
        table = policy.q_table(0, 0)
        assert table[-1, 1] > table[-1, 0]

    def test_runs_inside_cache_simulator_and_beats_never_update(self):
        config = ScenarioConfig.small(seed=3).with_overrides(num_slots=200)
        learner = QLearningCachingPolicy(
            OnlineLearningConfig(weight=config.aoi_weight), rng=0
        )
        learned = CacheSimulator(config, learner).run()
        never = CacheSimulator(config, NeverUpdatePolicy()).run()
        assert learned.total_reward > never.total_reward
