"""Tests for the content-addressable MDP solve cache and the policy memo.

Covers the cache itself (keying, FIFO bound, disk round trip, counters), its
integration into :class:`~repro.core.caching_mdp.MDPCachingPolicy` (memo
bound, hit/miss counters, identical decisions with and without the cache),
and the headline property the runtime relies on: a weight sweep performs
exactly one solve per distinct MDP, within a process and across processes
(via the disk layer).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import solve_cache
from repro.core.caching_mdp import ContentUpdateMDP, MDPCachingPolicy
from repro.core.solve_cache import SolveCache, solve_key
from repro.core.solvers import value_iteration
from repro.exceptions import ValidationError
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import CacheSimulator


@pytest.fixture
def isolated_cache(tmp_path):
    """Swap the global solve cache for a fresh one in a temp directory."""
    cache = solve_cache.configure_solve_cache(
        directory=str(tmp_path / "solves")
    )
    yield cache
    solve_cache.reset_solve_cache()


def small_solver_result(seed_param: float = 3.0):
    mdp = ContentUpdateMDP(
        max_age=seed_param, popularity=0.5, update_cost=1.0
    )
    return value_iteration(mdp, discount=0.9, tolerance=1e-9)


class TestSolveKey:
    def test_deterministic(self):
        a = solve_key("content", max_age=3.0, cost=1.25)
        b = solve_key("content", cost=1.25, max_age=3.0)
        assert a == b

    def test_sensitive_to_params_and_kind(self):
        base = solve_key("content", max_age=3.0)
        assert solve_key("content", max_age=3.0000001) != base
        assert solve_key("rsu", max_age=3.0) != base
        assert solve_key("content", max_age=3.0, extra=None) != base

    def test_arrays_and_tuples_canonicalise(self):
        assert solve_key("k", v=np.asarray([1.0, 2.0])) == solve_key(
            "k", v=(1.0, 2.0)
        )

    def test_unsupported_type_rejected(self):
        with pytest.raises(ValidationError):
            solve_key("k", v=object())


class TestSolveCache:
    def test_memory_roundtrip_counts_hits_and_misses(self, tmp_path):
        cache = SolveCache(directory=str(tmp_path))
        result = small_solver_result()
        assert cache.get("k") is None
        cache.put("k", result)
        got = cache.get("k")
        assert got is result
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_disk_roundtrip_is_bit_identical(self, tmp_path):
        writer = SolveCache(directory=str(tmp_path))
        result = small_solver_result()
        writer.put("k", result)
        reader = SolveCache(directory=str(tmp_path))
        loaded = reader.get("k")
        assert reader.stats.disk_hits == 1
        assert np.array_equal(loaded.values, result.values)
        assert np.array_equal(loaded.policy, result.policy)
        assert np.array_equal(loaded.q_values, result.q_values)
        assert loaded.iterations == result.iterations
        assert loaded.converged == result.converged
        assert loaded.residual == result.residual
        assert loaded.history == result.history

    def test_fifo_bound_evicts_oldest(self, tmp_path):
        cache = SolveCache(capacity=2, directory=str(tmp_path))
        result = small_solver_result()
        cache.put("a", result, persist=False)
        cache.put("b", result, persist=False)
        cache.put("c", result, persist=False)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get("a") is None  # evicted, not persisted
        assert cache.get("c") is not None

    def test_memory_only_cache(self):
        cache = SolveCache(directory=None)
        cache.put("k", small_solver_result())
        assert cache.get("k") is not None
        fresh = SolveCache(directory=None)
        assert fresh.get("k") is None

    def test_clear_disk(self, tmp_path):
        cache = SolveCache(directory=str(tmp_path))
        cache.put("k", small_solver_result())
        cache.clear(disk=True)
        assert len(cache) == 0
        assert SolveCache(directory=str(tmp_path)).get("k") is None

    def test_corrupted_entry_treated_as_miss(self, tmp_path):
        cache = SolveCache(directory=str(tmp_path))
        (tmp_path / "bad.npz").write_bytes(b"not an npz payload")
        assert cache.get("bad") is None


class TestPolicyMemo:
    def test_memo_limit_configurable(self):
        policy = MDPCachingPolicy(memo_limit=7, use_solve_cache=False)
        assert policy.memo_limit == 7
        assert policy.memo_stats["limit"] == 7

    def test_counters_track_hits_and_misses(self, isolated_cache):
        config = ScenarioConfig.small(seed=1, num_slots=15)
        policy = MDPCachingPolicy(config.build_mdp_config())
        CacheSimulator(config, policy).run()
        stats = policy.memo_stats
        assert stats["misses"] > 0
        assert stats["size"] == stats["misses"] <= stats["limit"]
        # A second run re-ensures the models after reset(): every content
        # solution now comes from the surviving memo.
        CacheSimulator(config, policy).run()
        assert policy.memo_stats["misses"] == stats["misses"]
        assert policy.memo_stats["hits"] > stats["hits"]

    def test_tiny_memo_still_produces_identical_run(self, isolated_cache):
        config = ScenarioConfig.fig1a(seed=0).with_overrides(num_slots=30)
        full = CacheSimulator(
            config, MDPCachingPolicy(config.build_mdp_config())
        ).run()
        tiny = CacheSimulator(
            config,
            MDPCachingPolicy(
                config.build_mdp_config(), memo_limit=1, use_solve_cache=False
            ),
        ).run()
        assert full.summary() == tiny.summary()

    def test_solve_cache_does_not_change_decisions(self, isolated_cache):
        config = ScenarioConfig.fig1a(seed=3).with_overrides(num_slots=40)
        with_cache = CacheSimulator(
            config, MDPCachingPolicy(config.build_mdp_config())
        ).run()
        # Second policy hits the cache for every solve; trajectories must
        # still be bit-identical.
        cached = CacheSimulator(
            config, MDPCachingPolicy(config.build_mdp_config())
        ).run()
        without = CacheSimulator(
            config,
            MDPCachingPolicy(config.build_mdp_config(), use_solve_cache=False),
        ).run()
        assert with_cache.summary() == cached.summary() == without.summary()
        assert np.array_equal(
            with_cache.metrics.age_matrix_history(),
            cached.metrics.age_matrix_history(),
        )
        assert np.array_equal(
            with_cache.metrics.age_matrix_history(),
            without.metrics.age_matrix_history(),
        )


class TestSweepSolveSharing:
    def test_weight_sweep_solves_each_distinct_mdp_once(self, isolated_cache):
        from repro.analysis.sweep import weight_sweep

        config = ScenarioConfig.small(seed=2, num_slots=20)
        first = weight_sweep([0.5, 2.0], config=config, num_seeds=2, workers=1)
        first_misses = isolated_cache.stats.misses
        assert first_misses > 0
        # One store per miss == exactly one solve per distinct MDP.
        assert isolated_cache.stats.stores == first_misses
        # Re-running the identical sweep re-solves nothing.
        second = weight_sweep([0.5, 2.0], config=config, num_seeds=2, workers=1)
        assert second == first
        assert isolated_cache.stats.misses == first_misses
        assert isolated_cache.stats.hits > 0

    def test_disk_layer_shares_solves_across_processes(self, isolated_cache):
        from repro.analysis.sweep import weight_sweep

        config = ScenarioConfig.small(seed=2, num_slots=20)
        weight_sweep([0.5, 2.0], config=config, num_seeds=2, workers=1)
        distinct = isolated_cache.stats.misses
        # A fresh cache over the same directory models a new process: every
        # solve is answered from disk, none is recomputed.
        fresh = solve_cache.configure_solve_cache(
            directory=isolated_cache.directory
        )
        weight_sweep([0.5, 2.0], config=config, num_seeds=2, workers=1)
        assert fresh.stats.misses == 0
        assert fresh.stats.disk_hits == distinct

    def test_changed_parameters_re_solve(self, isolated_cache):
        from repro.analysis.sweep import weight_sweep

        config = ScenarioConfig.small(seed=2, num_slots=20)
        weight_sweep([0.5], config=config, workers=1)
        before = isolated_cache.stats.misses
        # A new weight is a different MDP: it must miss (and only it).
        weight_sweep([0.75], config=config, workers=1)
        assert isolated_cache.stats.misses > before


class TestDisableEnvSpellings:
    """REPRO_SOLVE_CACHE falsey spellings must all disable disk persistence."""

    @pytest.mark.parametrize(
        "value", ["0", "false", "False", "FALSE", "no", "No", "off", "OFF", "", "  "]
    )
    def test_falsey_spellings_disable_disk(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SOLVE_CACHE", value)
        assert solve_cache.default_directory() is None

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "enabled"])
    def test_truthy_spellings_keep_disk_enabled(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SOLVE_CACHE", value)
        monkeypatch.delenv("REPRO_SOLVE_CACHE_DIR", raising=False)
        assert solve_cache.default_directory() == solve_cache.DEFAULT_DIRECTORY

    def test_unset_keeps_disk_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVE_CACHE", raising=False)
        monkeypatch.delenv("REPRO_SOLVE_CACHE_DIR", raising=False)
        assert solve_cache.default_directory() == solve_cache.DEFAULT_DIRECTORY

    def test_disabled_global_cache_stays_memory_only(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SOLVE_CACHE", "off")
        monkeypatch.setenv("REPRO_SOLVE_CACHE_DIR", str(tmp_path / "solves"))
        solve_cache.reset_solve_cache()
        try:
            cache = solve_cache.global_solve_cache()
            cache.put(solve_key("k", x=1.0), small_solver_result())
            assert not (tmp_path / "solves").exists()
        finally:
            solve_cache.reset_solve_cache()
