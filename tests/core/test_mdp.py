"""Tests for repro.core.mdp (spaces and tabular MDP models)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mdp import (
    DiscreteSpace,
    MDPModel,
    ProductSpace,
    TabularMDP,
    build_tabular,
    uniform_random_policy,
)
from repro.exceptions import ModelError, ValidationError


def simple_chain(num_states: int = 3, num_actions: int = 2) -> TabularMDP:
    """A small deterministic chain MDP: action 0 stays, action 1 advances."""
    transitions = np.zeros((num_states, num_actions, num_states))
    rewards = np.zeros((num_states, num_actions))
    for s in range(num_states):
        transitions[s, 0, s] = 1.0
        transitions[s, 1, min(s + 1, num_states - 1)] = 1.0
        rewards[s, 1] = 1.0 if s < num_states - 1 else 0.0
    return TabularMDP(transitions, rewards)


class TestDiscreteSpace:
    def test_round_trip(self):
        space = DiscreteSpace(["a", "b", "c"])
        assert space.index("b") == 1
        assert space.element(1) == "b"

    def test_contains(self):
        space = DiscreteSpace([1, 2, 3])
        assert 2 in space
        assert 9 not in space

    def test_duplicate_rejected(self):
        with pytest.raises(ValidationError):
            DiscreteSpace(["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            DiscreteSpace([])

    def test_unknown_element_rejected(self):
        with pytest.raises(ValidationError):
            DiscreteSpace(["a"]).index("z")

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValidationError):
            DiscreteSpace(["a"]).element(3)


class TestProductSpace:
    def test_size_is_product(self):
        space = ProductSpace([DiscreteSpace([0, 1]), DiscreteSpace("xyz")])
        assert len(space) == 6

    def test_ravel_unravel_round_trip(self):
        space = ProductSpace([DiscreteSpace(range(3)), DiscreteSpace(range(4))])
        for index in range(len(space)):
            assert space.ravel(space.unravel(index)) == index

    def test_elements_are_tuples(self):
        space = ProductSpace([DiscreteSpace([0, 1]), DiscreteSpace(["a"])])
        assert space.element(0) == (0, "a")

    def test_wrong_factor_count_rejected(self):
        space = ProductSpace([DiscreteSpace([0, 1])])
        with pytest.raises(ValidationError):
            space.ravel([0, 1])

    def test_empty_factor_list_rejected(self):
        with pytest.raises(ValidationError):
            ProductSpace([])


class TestTabularMDP:
    def test_shape_properties(self):
        mdp = simple_chain(4, 2)
        assert mdp.num_states == 4
        assert mdp.num_actions == 2

    def test_transition_rows_must_sum_to_one(self):
        transitions = np.zeros((2, 1, 2))
        transitions[0, 0, 0] = 0.5  # missing mass
        transitions[1, 0, 1] = 1.0
        with pytest.raises(ModelError):
            TabularMDP(transitions, np.zeros((2, 1)))

    def test_negative_probability_rejected(self):
        transitions = np.zeros((2, 1, 2))
        transitions[0, 0, 0] = 1.5
        transitions[0, 0, 1] = -0.5
        transitions[1, 0, 1] = 1.0
        with pytest.raises(ModelError):
            TabularMDP(transitions, np.zeros((2, 1)))

    def test_nan_reward_rejected(self):
        mdp_transitions = np.zeros((2, 1, 2))
        mdp_transitions[:, 0, 0] = 1.0
        rewards = np.array([[np.nan], [0.0]])
        with pytest.raises(ModelError):
            TabularMDP(mdp_transitions, rewards)

    def test_bad_shape_rejected(self):
        with pytest.raises(ModelError):
            TabularMDP(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_next_state_reward_converted_to_expectation(self):
        transitions = np.zeros((2, 1, 2))
        transitions[0, 0, 0] = 0.5
        transitions[0, 0, 1] = 0.5
        transitions[1, 0, 1] = 1.0
        rewards = np.zeros((2, 1, 2))
        rewards[0, 0, 0] = 2.0
        rewards[0, 0, 1] = 4.0
        mdp = TabularMDP(transitions, rewards)
        assert mdp.expected_reward(0, 0) == pytest.approx(3.0)

    def test_transition_distribution_sparse(self):
        mdp = simple_chain()
        distribution = mdp.transition_distribution(0, 1)
        assert distribution == {1: 1.0}

    def test_expected_reward_lookup(self):
        mdp = simple_chain()
        assert mdp.expected_reward(0, 1) == pytest.approx(1.0)
        assert mdp.expected_reward(2, 1) == pytest.approx(0.0)

    def test_index_bounds_checked(self):
        mdp = simple_chain()
        with pytest.raises(ValidationError):
            mdp.expected_reward(99, 0)
        with pytest.raises(ValidationError):
            mdp.transition_distribution(0, 99)

    def test_policy_shape_checked(self):
        mdp = simple_chain()
        with pytest.raises(ValidationError):
            mdp.transition_matrix(np.array([0]))

    def test_policy_action_range_checked(self):
        mdp = simple_chain()
        with pytest.raises(ValidationError):
            mdp.policy_reward(np.array([0, 5, 0]))

    def test_induced_chain_is_stochastic(self):
        mdp = simple_chain(4)
        chain = mdp.transition_matrix(np.ones(4, dtype=int))
        np.testing.assert_allclose(chain.sum(axis=1), 1.0)

    def test_sample_next_state_follows_support(self, rng):
        mdp = simple_chain()
        for _ in range(10):
            assert mdp.sample_next_state(0, 1, rng) == 1

    def test_successors_iterator(self):
        mdp = simple_chain()
        transitions = list(mdp.successors(0, 1))
        assert len(transitions) == 1
        assert transitions[0].next_state == 1
        assert transitions[0].probability == pytest.approx(1.0)

    def test_state_space_size_mismatch_rejected(self):
        transitions = np.zeros((2, 1, 2))
        transitions[:, 0, 0] = 1.0
        with pytest.raises(ModelError):
            TabularMDP(
                transitions,
                np.zeros((2, 1)),
                state_space=DiscreteSpace([0, 1, 2]),
            )


class _ImplicitModel(MDPModel):
    """Two-state implicit model used to exercise build_tabular."""

    @property
    def num_states(self):
        return 2

    @property
    def num_actions(self):
        return 2

    def transition_distribution(self, state, action):
        return {1 - state: 1.0} if action == 1 else {state: 1.0}

    def expected_reward(self, state, action):
        return 1.0 if (state == 0 and action == 1) else 0.0

    def available_actions(self, state):
        return [0, 1] if state == 0 else [0]


class TestBuildTabular:
    def test_materialises_transitions(self):
        tab = build_tabular(_ImplicitModel())
        assert tab.transition_distribution(0, 1) == {1: 1.0}
        assert tab.expected_reward(0, 1) == pytest.approx(1.0)

    def test_inadmissible_actions_are_penalised_self_loops(self):
        tab = build_tabular(_ImplicitModel())
        assert tab.transition_distribution(1, 1) == {1: 1.0}
        assert tab.expected_reward(1, 1) < tab.expected_reward(1, 0)

    def test_result_passes_validation(self):
        tab = build_tabular(_ImplicitModel())
        np.testing.assert_allclose(tab.transition_tensor.sum(axis=2), 1.0)


class TestUniformRandomPolicy:
    def test_uniform_over_admissible(self):
        policy = uniform_random_policy(_ImplicitModel())
        np.testing.assert_allclose(policy[0], [0.5, 0.5])
        np.testing.assert_allclose(policy[1], [1.0, 0.0])

    @given(num_states=st.integers(2, 6), num_actions=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_property_rows_sum_to_one(self, num_states, num_actions):
        transitions = np.zeros((num_states, num_actions, num_states))
        transitions[:, :, 0] = 1.0
        mdp = TabularMDP(transitions, np.zeros((num_states, num_actions)))
        policy = uniform_random_policy(mdp)
        np.testing.assert_allclose(policy.sum(axis=1), 1.0)
