"""Tests for repro.core.lyapunov (drift-plus-penalty service control, Eq. 5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.service import AlwaysServePolicy, NeverServePolicy
from repro.core.lyapunov import (
    DriftPenaltyRecord,
    LyapunovServiceController,
    run_backlog_simulation,
)
from repro.core.policies import ServiceObservation
from repro.exceptions import ConfigurationError, ValidationError


def observation(
    backlog: float,
    cost: float = 1.0,
    departure: float = 1.0,
    *,
    head_age=None,
    head_max=None,
    slack=None,
    time_slot: int = 0,
) -> ServiceObservation:
    return ServiceObservation(
        time_slot=time_slot,
        rsu_id=0,
        queue_backlog=backlog,
        service_cost=cost,
        departure=departure,
        head_content_age=head_age,
        head_content_max_age=head_max,
        head_deadline_slack=slack,
    )


class TestEquationFiveDecision:
    def test_empty_queue_defers(self):
        # Q[t] = 0: Eq. (5) minimises cost, so the RSU does not serve.
        controller = LyapunovServiceController(tradeoff_v=10.0)
        assert controller.decide(observation(0.0, cost=1.0)) is False

    def test_huge_queue_serves(self):
        # Q[t] -> inf: the -Q*b term dominates, so the RSU serves.
        controller = LyapunovServiceController(tradeoff_v=10.0)
        assert controller.decide(observation(1e9, cost=1.0)) is True

    def test_threshold_is_v_cost_over_departure(self):
        # Serve exactly when Q * b > V * C.
        controller = LyapunovServiceController(tradeoff_v=10.0)
        assert controller.decide(observation(9.0, cost=1.0, departure=1.0)) is False
        assert controller.decide(observation(11.0, cost=1.0, departure=1.0)) is True

    def test_zero_cost_with_tie_breaker_serve(self):
        controller = LyapunovServiceController(tradeoff_v=10.0, tie_breaker="serve")
        assert controller.decide(observation(0.0, cost=0.0)) is True

    def test_zero_cost_with_tie_breaker_defer(self):
        controller = LyapunovServiceController(tradeoff_v=10.0, tie_breaker="defer")
        assert controller.decide(observation(0.0, cost=0.0)) is False

    def test_larger_v_defers_longer(self):
        low_v = LyapunovServiceController(tradeoff_v=1.0)
        high_v = LyapunovServiceController(tradeoff_v=100.0)
        probe = observation(20.0, cost=1.0)
        assert low_v.decide(probe) is True
        assert high_v.decide(probe) is False

    def test_cheap_slot_preferred(self):
        controller = LyapunovServiceController(tradeoff_v=10.0)
        assert controller.decide(observation(5.0, cost=0.1)) is True
        controller2 = LyapunovServiceController(tradeoff_v=10.0)
        assert controller2.decide(observation(5.0, cost=10.0)) is False

    def test_evaluate_reports_objectives(self):
        controller = LyapunovServiceController(tradeoff_v=2.0)
        decision = controller.evaluate(observation(4.0, cost=3.0, departure=2.0))
        assert decision.objective_serve == pytest.approx(2.0 * 3.0 - 4.0 * 2.0)
        assert decision.objective_defer == 0.0
        assert decision.serve is True

    def test_negative_v_rejected(self):
        with pytest.raises(ValidationError):
            LyapunovServiceController(tradeoff_v=-1.0)

    def test_bad_tie_breaker_rejected(self):
        with pytest.raises(ConfigurationError):
            LyapunovServiceController(tie_breaker="maybe")

    @given(
        backlog=st.floats(min_value=0.0, max_value=1e4),
        cost=st.floats(min_value=0.0, max_value=100.0),
        departure=st.floats(min_value=0.0, max_value=100.0),
        v=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_decision_matches_sign_of_objective(
        self, backlog, cost, departure, v
    ):
        controller = LyapunovServiceController(tradeoff_v=v, enforce_aoi_validity=False)
        decision = controller.evaluate(observation(backlog, cost, departure))
        objective = v * cost - backlog * departure
        if objective < 0:
            assert decision.serve is True
        elif objective > 0:
            assert decision.serve is False


class TestAoiValidityGuard:
    def test_stale_head_blocks_service(self):
        controller = LyapunovServiceController(tradeoff_v=1.0)
        probe = observation(100.0, cost=0.1, head_age=9.0, head_max=5.0)
        decision = controller.evaluate(probe)
        assert decision.serve is False
        assert decision.blocked_by_aoi is True

    def test_fresh_head_allows_service(self):
        controller = LyapunovServiceController(tradeoff_v=1.0)
        probe = observation(100.0, cost=0.1, head_age=3.0, head_max=5.0)
        assert controller.evaluate(probe).serve is True

    def test_guard_can_be_disabled(self):
        controller = LyapunovServiceController(tradeoff_v=1.0, enforce_aoi_validity=False)
        probe = observation(100.0, cost=0.1, head_age=9.0, head_max=5.0)
        assert controller.evaluate(probe).serve is True

    def test_unknown_head_age_not_blocked(self):
        controller = LyapunovServiceController(tradeoff_v=1.0)
        probe = observation(100.0, cost=0.1)
        assert controller.evaluate(probe).serve is True


class TestDriftPenaltyRecord:
    def test_averages(self):
        record = DriftPenaltyRecord()
        record.record(cost=2.0, backlog=4.0, served=True)
        record.record(cost=0.0, backlog=6.0, served=False)
        assert record.time_average_cost == pytest.approx(1.0)
        assert record.time_average_backlog == pytest.approx(5.0)
        assert record.service_rate == pytest.approx(0.5)
        assert len(record) == 2

    def test_empty_record_is_nan(self):
        record = DriftPenaltyRecord()
        assert np.isnan(record.time_average_cost)
        assert np.isnan(record.service_rate)

    def test_controller_records_decisions(self):
        controller = LyapunovServiceController(tradeoff_v=1.0)
        controller.decide(observation(10.0, cost=1.0))
        controller.decide(observation(0.0, cost=1.0))
        assert len(controller.record) == 2
        controller.reset()
        assert len(controller.record) == 0


class TestRunBacklogSimulation:
    def test_lyapunov_is_stable_under_moderate_load(self):
        result = run_backlog_simulation(
            LyapunovServiceController(tradeoff_v=10.0),
            num_slots=400,
            arrival_fn=lambda t: 0.6,
            cost_fn=lambda t: 1.0,
            departure=1.5,
        )
        assert result.stable
        assert result.time_average_backlog < 50.0

    def test_never_serve_is_unstable(self):
        result = run_backlog_simulation(
            NeverServePolicy(),
            num_slots=200,
            arrival_fn=lambda t: 1.0,
            cost_fn=lambda t: 1.0,
        )
        assert not result.stable
        assert result.backlog_history[-1] == pytest.approx(200.0)

    def test_always_serve_pays_more_cost_than_lyapunov(self):
        kwargs = dict(
            num_slots=500,
            arrival_fn=lambda t: 0.5,
            cost_fn=lambda t: 1.0 + (t % 5),  # time-varying cost
            departure=2.0,
        )
        lyapunov = run_backlog_simulation(
            LyapunovServiceController(tradeoff_v=20.0), **kwargs
        )
        always = run_backlog_simulation(AlwaysServePolicy(), **kwargs)
        assert lyapunov.time_average_cost <= always.time_average_cost
        assert lyapunov.stable

    def test_higher_v_trades_backlog_for_cost(self):
        kwargs = dict(
            num_slots=600,
            arrival_fn=lambda t: 0.5,
            cost_fn=lambda t: 1.0 + (t % 3),
            departure=2.0,
        )
        low = run_backlog_simulation(LyapunovServiceController(tradeoff_v=2.0), **kwargs)
        high = run_backlog_simulation(LyapunovServiceController(tradeoff_v=50.0), **kwargs)
        assert high.time_average_cost <= low.time_average_cost + 1e-9
        assert high.time_average_backlog >= low.time_average_backlog - 1e-9

    def test_invalid_num_slots_rejected(self):
        with pytest.raises(ValidationError):
            run_backlog_simulation(
                AlwaysServePolicy(),
                num_slots=0,
                arrival_fn=lambda t: 0.0,
                cost_fn=lambda t: 1.0,
            )

    def test_record_length_matches_horizon(self):
        result = run_backlog_simulation(
            LyapunovServiceController(tradeoff_v=5.0),
            num_slots=123,
            arrival_fn=lambda t: 0.3,
            cost_fn=lambda t: 1.0,
        )
        assert len(result.record) == 123
        assert result.backlog_history.shape == (124,)
