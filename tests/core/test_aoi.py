"""Tests for repro.core.aoi (AoI counters, vectors, processes)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aoi import (
    AoICounter,
    AoIProcess,
    AoIVector,
    aoi_utility,
    aoi_violation,
)
from repro.exceptions import ValidationError


class TestAoiUtility:
    def test_fresh_content_earns_max(self):
        assert aoi_utility(1.0, 10.0) == pytest.approx(10.0)

    def test_content_at_limit_earns_one(self):
        assert aoi_utility(10.0, 10.0) == pytest.approx(1.0)

    def test_ages_below_one_are_clamped(self):
        assert aoi_utility(0.0, 8.0) == pytest.approx(8.0)

    def test_utility_decreases_with_age(self):
        utilities = [aoi_utility(a, 10.0) for a in (1, 2, 5, 10, 20)]
        assert utilities == sorted(utilities, reverse=True)

    def test_invalid_max_age_rejected(self):
        with pytest.raises(ValidationError):
            aoi_utility(2.0, 0.0)

    def test_nan_age_rejected(self):
        with pytest.raises(ValidationError):
            aoi_utility(float("nan"), 5.0)


class TestAoiViolation:
    def test_below_limit_not_violating(self):
        assert not aoi_violation(5.0, 5.0)

    def test_above_limit_violating(self):
        assert aoi_violation(5.1, 5.0)


class TestAoICounter:
    def test_initial_age_defaults_to_one(self):
        assert AoICounter(10.0).age == 1.0

    def test_tick_increments(self):
        counter = AoICounter(10.0)
        counter.tick()
        counter.tick(2)
        assert counter.age == 4.0

    def test_tick_saturates_at_ceiling(self):
        counter = AoICounter(5.0, ceiling=8.0)
        counter.tick(100)
        assert counter.age == 8.0

    def test_refresh_resets_to_one(self):
        counter = AoICounter(10.0)
        counter.tick(6)
        counter.refresh()
        assert counter.age == 1.0

    def test_refresh_with_delivered_age(self):
        counter = AoICounter(10.0)
        counter.tick(6)
        counter.refresh(3.0)
        assert counter.age == 3.0

    def test_refresh_below_reset_age_rejected(self):
        counter = AoICounter(10.0)
        with pytest.raises(ValidationError):
            counter.refresh(0.5)

    def test_violation_flag(self):
        counter = AoICounter(3.0)
        assert not counter.is_violating
        counter.tick(3)
        assert counter.is_violating

    def test_utility_matches_function(self):
        counter = AoICounter(8.0)
        counter.tick(3)
        assert counter.utility == pytest.approx(aoi_utility(4.0, 8.0))

    def test_freshness_bounds(self):
        counter = AoICounter(5.0, ceiling=10.0)
        assert counter.freshness == pytest.approx(1.0)
        counter.tick(100)
        assert counter.freshness == pytest.approx(0.0)

    def test_negative_tick_rejected(self):
        with pytest.raises(ValidationError):
            AoICounter(5.0).tick(-1)

    def test_ceiling_below_max_age_rejected(self):
        with pytest.raises(ValidationError):
            AoICounter(10.0, ceiling=5.0)

    def test_copy_is_independent(self):
        counter = AoICounter(10.0)
        counter.tick(4)
        clone = counter.copy()
        counter.tick(3)
        assert clone.age == 5.0
        assert counter.age == 8.0


class TestAoIVector:
    def test_length_and_iteration(self):
        vector = AoIVector([5.0, 6.0, 7.0])
        assert len(vector) == 3
        assert list(vector) == [1.0, 1.0, 1.0]

    def test_tick_all(self):
        vector = AoIVector([5.0, 6.0])
        vector.tick(3)
        np.testing.assert_array_equal(vector.ages, [4.0, 4.0])

    def test_tick_saturates(self):
        vector = AoIVector([5.0, 10.0], ceiling=12.0)
        vector.tick(100)
        np.testing.assert_array_equal(vector.ages, [12.0, 12.0])

    def test_refresh_single(self):
        vector = AoIVector([5.0, 5.0])
        vector.tick(4)
        vector.refresh(1)
        np.testing.assert_array_equal(vector.ages, [5.0, 1.0])

    def test_refresh_many(self):
        vector = AoIVector([5.0, 5.0, 5.0])
        vector.tick(4)
        vector.refresh_many([0, 2])
        np.testing.assert_array_equal(vector.ages, [1.0, 5.0, 1.0])

    def test_refresh_out_of_range(self):
        with pytest.raises(ValidationError):
            AoIVector([5.0]).refresh(1)

    def test_violations_mask(self):
        vector = AoIVector([3.0, 10.0])
        vector.tick(4)
        np.testing.assert_array_equal(vector.violations, [True, False])
        assert vector.violation_count == 1

    def test_utilities(self):
        vector = AoIVector([4.0, 8.0], initial_ages=[2.0, 4.0])
        np.testing.assert_allclose(vector.utilities, [2.0, 2.0])

    def test_set_ages_shape_checked(self):
        vector = AoIVector([5.0, 5.0])
        with pytest.raises(ValidationError):
            vector.set_ages([1.0])

    def test_set_ages_rejects_below_one(self):
        vector = AoIVector([5.0])
        with pytest.raises(ValidationError):
            vector.set_ages([0.5])

    def test_initial_ages_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            AoIVector([5.0, 5.0], initial_ages=[1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            AoIVector([])

    def test_non_positive_max_age_rejected(self):
        with pytest.raises(ValidationError):
            AoIVector([5.0, 0.0])

    def test_copy_is_independent(self):
        vector = AoIVector([5.0, 5.0])
        vector.tick(2)
        clone = vector.copy()
        vector.tick(2)
        np.testing.assert_array_equal(clone.ages, [3.0, 3.0])

    def test_mean_and_peak(self):
        vector = AoIVector([10.0, 10.0], initial_ages=[2.0, 6.0])
        assert vector.mean_age == pytest.approx(4.0)
        assert vector.peak_age == pytest.approx(6.0)

    @given(
        slots=st.integers(min_value=0, max_value=50),
        max_age=st.floats(min_value=1.0, max_value=30.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_age_never_exceeds_ceiling(self, slots, max_age):
        vector = AoIVector([max_age])
        vector.tick(slots)
        assert vector.ages[0] <= vector.ceiling

    @given(ages=st.lists(st.floats(min_value=1.0, max_value=20.0), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_property_utility_positive(self, ages):
        vector = AoIVector([25.0] * len(ages), initial_ages=ages)
        assert np.all(vector.utilities > 0)


class TestAoIProcess:
    def test_record_and_length(self):
        process = AoIProcess(5.0)
        process.record(0, 1.0)
        process.record(1, 2.0)
        assert len(process) == 2

    def test_out_of_order_rejected(self):
        process = AoIProcess(5.0)
        process.record(3, 1.0)
        with pytest.raises(ValidationError):
            process.record(2, 1.0)

    def test_negative_age_rejected(self):
        with pytest.raises(ValidationError):
            AoIProcess(5.0).record(0, -1.0)

    def test_extend(self):
        process = AoIProcess(5.0)
        process.extend([(0, 1.0), (1, 2.0), (2, 3.0)])
        assert len(process) == 3

    def test_peaks_detects_refreshes(self):
        process = AoIProcess(10.0)
        process.extend([(0, 1), (1, 2), (2, 3), (3, 1), (4, 2)])
        peaks = process.peaks()
        assert 3.0 in peaks
        assert peaks[-1] == 2.0

    def test_statistics_of_sawtooth(self):
        process = AoIProcess(4.0)
        process.extend([(t, 1 + (t % 3)) for t in range(12)])
        stats = process.statistics()
        assert stats.mean_age == pytest.approx(2.0)
        assert stats.peak_age == pytest.approx(3.0)
        assert stats.violation_fraction == 0.0
        assert stats.num_samples == 12

    def test_statistics_empty(self):
        stats = AoIProcess(4.0).statistics()
        assert np.isnan(stats.mean_age)
        assert stats.num_samples == 0

    def test_violation_fraction(self):
        process = AoIProcess(2.0)
        process.extend([(0, 1), (1, 2), (2, 3), (3, 4)])
        assert process.statistics().violation_fraction == pytest.approx(0.5)

    def test_as_dict_round_trip(self):
        process = AoIProcess(4.0)
        process.extend([(0, 1), (1, 2)])
        payload = process.statistics().as_dict()
        assert set(payload) == {
            "mean_age",
            "peak_age",
            "mean_peak_age",
            "violation_fraction",
            "num_samples",
        }
