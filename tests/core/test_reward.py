"""Tests for repro.core.reward (Eqs. 1-3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reward import (
    RewardBreakdown,
    UtilityFunction,
    aoi_utility_term,
    cost_term,
    post_action_ages,
)
from repro.exceptions import ValidationError


class TestPostActionAges:
    def test_update_resets_age(self):
        ages = np.array([[5.0, 3.0]])
        actions = np.array([[1, 0]])
        np.testing.assert_allclose(post_action_ages(ages, actions), [[1.0, 3.0]])

    def test_no_update_keeps_age(self):
        ages = np.array([[5.0, 3.0]])
        actions = np.array([[0, 0]])
        np.testing.assert_allclose(post_action_ages(ages, actions), ages)

    def test_custom_refresh_age(self):
        result = post_action_ages([[7.0]], [[1]], refresh_age=2.0)
        np.testing.assert_allclose(result, [[2.0]])

    def test_1d_inputs_promoted(self):
        result = post_action_ages([5.0, 4.0], [1, 0])
        assert result.shape == (1, 2)

    def test_non_binary_action_rejected(self):
        with pytest.raises(ValidationError):
            post_action_ages([[5.0]], [[2]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            post_action_ages([[5.0, 4.0]], [[1]])


class TestAoiUtilityTerm:
    def test_matches_equation_2(self):
        # Two RSUs x two contents, uniform popularity.
        ages = np.array([[1.0, 2.0], [4.0, 8.0]])
        max_ages = np.array([4.0, 8.0])
        expected = (4 / 1 + 8 / 2) + (4 / 4 + 8 / 8)
        assert aoi_utility_term(ages, max_ages) == pytest.approx(expected)

    def test_popularity_weighting(self):
        ages = np.array([[2.0, 2.0]])
        max_ages = np.array([4.0, 4.0])
        popularity = np.array([[1.0, 0.0]])
        assert aoi_utility_term(ages, max_ages, popularity) == pytest.approx(2.0)

    def test_full_matrix_max_ages(self):
        ages = np.array([[2.0], [4.0]])
        max_ages = np.array([[4.0], [8.0]])
        assert aoi_utility_term(ages, max_ages) == pytest.approx(2.0 + 2.0)

    def test_fresher_is_better(self):
        max_ages = np.array([10.0])
        fresh = aoi_utility_term([[1.0]], max_ages)
        stale = aoi_utility_term([[9.0]], max_ages)
        assert fresh > stale

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            aoi_utility_term([[1.0, 2.0]], [4.0])

    def test_negative_popularity_rejected(self):
        with pytest.raises(ValidationError):
            aoi_utility_term([[1.0]], [4.0], [[-1.0]])

    def test_non_positive_max_age_rejected(self):
        with pytest.raises(ValidationError):
            aoi_utility_term([[1.0]], [0.0])

    @given(
        age=st.floats(min_value=1.0, max_value=50.0),
        max_age=st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_single_term_equals_ratio(self, age, max_age):
        value = aoi_utility_term([[age]], [max_age])
        assert value == pytest.approx(max_age / age)


class TestCostTerm:
    def test_matches_equation_3(self):
        actions = np.array([[1, 0], [1, 1]])
        costs = np.array([[2.0, 3.0], [1.0, 4.0]])
        assert cost_term(actions, costs) == pytest.approx(2.0 + 1.0 + 4.0)

    def test_no_updates_no_cost(self):
        assert cost_term([[0, 0]], [2.0, 3.0]) == 0.0

    def test_shared_cost_vector(self):
        assert cost_term([[1, 1], [0, 1]], [2.0, 3.0]) == pytest.approx(8.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValidationError):
            cost_term([[1]], [-1.0])

    def test_non_binary_action_rejected(self):
        with pytest.raises(ValidationError):
            cost_term([[3]], [1.0])

    @given(
        actions=st.lists(st.integers(0, 1), min_size=1, max_size=6),
        unit=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_cost_is_count_times_unit(self, actions, unit):
        costs = [unit] * len(actions)
        assert cost_term([actions], costs) == pytest.approx(unit * sum(actions))


class TestRewardBreakdown:
    def test_total_formula(self):
        breakdown = RewardBreakdown(aoi_utility=10.0, cost=4.0, weight=0.5)
        assert breakdown.total == pytest.approx(0.5 * 10.0 - 4.0)

    def test_as_dict(self):
        payload = RewardBreakdown(1.0, 2.0, 3.0).as_dict()
        assert payload["total"] == pytest.approx(1.0)


class TestUtilityFunction:
    def test_evaluate_combines_terms(self):
        fn = UtilityFunction([4.0, 8.0], [1.0, 1.0], weight=2.0)
        breakdown = fn.evaluate([[4.0, 8.0]], [[1, 0]])
        # post ages: [1, 8]; utility = 4/1 + 8/8 = 5 ; cost = 1
        assert breakdown.aoi_utility == pytest.approx(5.0)
        assert breakdown.cost == pytest.approx(1.0)
        assert breakdown.total == pytest.approx(2.0 * 5.0 - 1.0)

    def test_total_shortcut(self):
        fn = UtilityFunction([4.0], [1.0], weight=1.0)
        assert fn.total([[2.0]], [[0]]) == pytest.approx(2.0)

    def test_updating_fresher_content_changes_only_cost(self):
        fn = UtilityFunction([4.0], [1.5], weight=1.0)
        skip = fn.evaluate([[1.0]], [[0]])
        update = fn.evaluate([[1.0]], [[1]])
        assert update.aoi_utility == pytest.approx(skip.aoi_utility)
        assert update.total == pytest.approx(skip.total - 1.5)

    def test_weight_zero_reduces_to_negative_cost(self):
        fn = UtilityFunction([4.0], [2.0], weight=0.0)
        assert fn.total([[4.0]], [[1]]) == pytest.approx(-2.0)

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValidationError):
            UtilityFunction([4.0], [1.0], weight=-1.0)

    def test_invalid_max_age_rejected(self):
        with pytest.raises(ValidationError):
            UtilityFunction([0.0], [1.0])

    def test_invalid_cost_rejected(self):
        with pytest.raises(ValidationError):
            UtilityFunction([4.0], [-1.0])

    @given(
        weight=st.floats(min_value=0.0, max_value=10.0),
        age=st.floats(min_value=1.0, max_value=20.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_updating_never_reduces_aoi_utility(self, weight, age):
        fn = UtilityFunction([10.0], [1.0], weight=weight)
        skip = fn.evaluate([[age]], [[0]])
        update = fn.evaluate([[age]], [[1]])
        assert update.aoi_utility >= skip.aoi_utility - 1e-12
