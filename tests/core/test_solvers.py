"""Tests for repro.core.solvers (value iteration, policy iteration, Q-learning)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mdp import TabularMDP
from repro.core.solvers import (
    QLearningConfig,
    QLearningSolver,
    policy_evaluation,
    policy_iteration,
    value_iteration,
)
from repro.exceptions import SolverError, ValidationError


def two_state_mdp(good_reward: float = 1.0) -> TabularMDP:
    """Two states, two actions; action 1 moves to state 1 which pays off."""
    transitions = np.zeros((2, 2, 2))
    transitions[0, 0, 0] = 1.0
    transitions[0, 1, 1] = 1.0
    transitions[1, 0, 1] = 1.0
    transitions[1, 1, 0] = 1.0
    rewards = np.array([[0.0, 0.0], [good_reward, 0.0]])
    return TabularMDP(transitions, rewards)


def random_mdp(rng: np.random.Generator, num_states: int, num_actions: int) -> TabularMDP:
    """A random dense MDP with rewards in [0, 1]."""
    transitions = rng.random((num_states, num_actions, num_states))
    transitions /= transitions.sum(axis=2, keepdims=True)
    rewards = rng.random((num_states, num_actions))
    return TabularMDP(transitions, rewards)


class TestValueIteration:
    def test_simple_optimal_policy(self):
        result = value_iteration(two_state_mdp(), discount=0.9)
        assert result.converged
        assert result.policy[0] == 1  # move to the rewarding state
        assert result.policy[1] == 0  # stay there

    def test_values_match_geometric_series(self):
        # Staying in state 1 earns 1 per slot, discounted.
        result = value_iteration(two_state_mdp(), discount=0.5, tolerance=1e-12)
        assert result.values[1] == pytest.approx(1.0 / (1.0 - 0.5), rel=1e-6)

    def test_zero_discount_is_myopic(self):
        result = value_iteration(two_state_mdp(), discount=0.0, tolerance=1e-12)
        np.testing.assert_allclose(result.values, [0.0, 1.0])

    def test_warm_start_accepted(self):
        mdp = two_state_mdp()
        cold = value_iteration(mdp, discount=0.9)
        warm = value_iteration(mdp, discount=0.9, initial_values=cold.values)
        assert warm.iterations <= cold.iterations
        np.testing.assert_allclose(warm.values, cold.values, atol=1e-6)

    def test_bad_initial_values_shape_rejected(self):
        with pytest.raises(ValidationError):
            value_iteration(two_state_mdp(), initial_values=np.zeros(5))

    def test_non_convergence_raises(self):
        with pytest.raises(SolverError):
            value_iteration(two_state_mdp(), discount=0.99, max_iterations=2)

    def test_residual_history_monotone_overall(self):
        result = value_iteration(two_state_mdp(), discount=0.9)
        assert result.history[-1] <= result.history[0]

    def test_q_values_consistent_with_values(self):
        result = value_iteration(two_state_mdp(), discount=0.9, tolerance=1e-12)
        np.testing.assert_allclose(
            result.q_values.max(axis=1), result.values, atol=1e-6
        )

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_property_values_bounded_by_reward_over_one_minus_gamma(self, seed):
        rng = np.random.default_rng(seed)
        mdp = random_mdp(rng, 5, 3)
        discount = 0.8
        result = value_iteration(mdp, discount=discount, tolerance=1e-8)
        upper = 1.0 / (1.0 - discount) + 1e-6
        assert np.all(result.values <= upper)
        assert np.all(result.values >= -1e-9)


class TestPolicyEvaluation:
    def test_matches_closed_form(self):
        mdp = two_state_mdp()
        values = policy_evaluation(mdp, np.array([1, 0]), discount=0.5)
        # v(1) = 1 + 0.5 v(1) -> 2 ; v(0) = 0 + 0.5 v(1) -> 1
        np.testing.assert_allclose(values, [1.0, 2.0], atol=1e-9)

    def test_policy_shape_checked(self):
        with pytest.raises(ValidationError):
            policy_evaluation(two_state_mdp(), np.array([0]), discount=0.5)


class TestPolicyIteration:
    def test_agrees_with_value_iteration(self):
        mdp = two_state_mdp()
        vi = value_iteration(mdp, discount=0.9, tolerance=1e-12)
        pi = policy_iteration(mdp, discount=0.9)
        np.testing.assert_array_equal(vi.policy, pi.policy)
        np.testing.assert_allclose(vi.values, pi.values, atol=1e-5)

    def test_converges_flag_set(self):
        result = policy_iteration(two_state_mdp(), discount=0.9)
        assert result.converged
        assert result.residual == 0.0

    def test_initial_policy_respected(self):
        result = policy_iteration(
            two_state_mdp(), discount=0.9, initial_policy=np.array([0, 0])
        )
        assert result.policy[0] == 1

    def test_bad_initial_policy_rejected(self):
        with pytest.raises(ValidationError):
            policy_iteration(two_state_mdp(), initial_policy=np.array([0, 9]))

    @given(seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_property_matches_value_iteration_on_random_mdps(self, seed):
        rng = np.random.default_rng(seed)
        mdp = random_mdp(rng, 6, 3)
        vi = value_iteration(mdp, discount=0.9, tolerance=1e-10)
        pi = policy_iteration(mdp, discount=0.9)
        np.testing.assert_allclose(vi.values, pi.values, atol=1e-4)


class TestQLearningConfig:
    def test_default_is_valid(self):
        QLearningConfig().validate()

    def test_bad_learning_rate_rejected(self):
        with pytest.raises(ValidationError):
            QLearningConfig(learning_rate=0.0).validate()

    def test_bad_epsilon_rejected(self):
        with pytest.raises(ValidationError):
            QLearningConfig(epsilon=1.5).validate()


class TestQLearningSolver:
    def test_learns_simple_policy(self):
        solver = QLearningSolver(
            two_state_mdp(),
            config=QLearningConfig(discount=0.9, learning_rate=0.2, epsilon=0.2),
            rng=0,
        )
        solver.train(150, horizon=30)
        assert solver.policy[0] == 1
        assert solver.episodes_run == 150

    def test_values_approach_exact(self):
        mdp = two_state_mdp()
        exact = value_iteration(mdp, discount=0.9, tolerance=1e-10)
        solver = QLearningSolver(
            mdp,
            config=QLearningConfig(discount=0.9, learning_rate=0.3, epsilon=0.3),
            rng=1,
        )
        solver.train(300, horizon=40)
        assert np.max(np.abs(solver.values - exact.values)) < 2.0

    def test_update_returns_td_error(self):
        solver = QLearningSolver(two_state_mdp(), rng=0)
        error = solver.update(0, 1, reward=1.0, next_state=1)
        assert error == pytest.approx(1.0)

    def test_bad_start_state_rejected(self):
        solver = QLearningSolver(two_state_mdp(), rng=0)
        with pytest.raises(ValidationError):
            solver.run_episode(start_state=10)

    def test_bad_horizon_rejected(self):
        solver = QLearningSolver(two_state_mdp(), rng=0)
        with pytest.raises(ValidationError):
            solver.run_episode(horizon=0)

    def test_train_returns_reward_per_episode(self):
        solver = QLearningSolver(two_state_mdp(), rng=0)
        rewards = solver.train(5, horizon=10)
        assert len(rewards) == 5
