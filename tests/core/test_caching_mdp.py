"""Tests for repro.core.caching_mdp (the paper's cache-management MDP)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.caching_mdp import (
    AgeGrid,
    CachingMDPConfig,
    ContentUpdateMDP,
    MDPCachingPolicy,
    RSUCachingMDP,
)
from repro.core.policies import CacheObservation
from repro.core.solvers import value_iteration
from repro.exceptions import ConfigurationError, ValidationError


def make_observation(
    ages,
    max_ages=None,
    popularity=None,
    costs=None,
    time_slot=0,
) -> CacheObservation:
    ages = np.asarray(ages, dtype=float)
    if max_ages is None:
        max_ages = np.full_like(ages, 6.0)
    if popularity is None:
        popularity = np.full_like(ages, 1.0 / ages.shape[1])
    if costs is None:
        costs = np.full_like(ages, 1.0)
    return CacheObservation(
        time_slot=time_slot,
        ages=ages,
        max_ages=np.asarray(max_ages, dtype=float),
        popularity=np.asarray(popularity, dtype=float),
        update_costs=np.asarray(costs, dtype=float),
    )


class TestAgeGrid:
    def test_round_trip(self):
        grid = AgeGrid(8)
        for age in range(1, 9):
            assert grid.age_of(grid.index_of(age)) == age

    def test_clamping(self):
        grid = AgeGrid(5)
        assert grid.index_of(100.0) == 4
        assert grid.index_of(0.2) == 0

    def test_next_age_saturates(self):
        grid = AgeGrid(5)
        assert grid.next_age(5) == 5
        assert grid.next_age(3) == 4

    def test_invalid_index_rejected(self):
        with pytest.raises(ValidationError):
            AgeGrid(5).age_of(5)

    def test_invalid_age_rejected(self):
        with pytest.raises(ValidationError):
            AgeGrid(5).index_of(float("nan"))


class TestCachingMDPConfig:
    def test_defaults_valid(self):
        CachingMDPConfig().validate()

    def test_ceiling_for_respects_override(self):
        config = CachingMDPConfig(age_ceiling=7)
        assert config.ceiling_for(100.0) == 7

    def test_ceiling_for_derives_from_max_age(self):
        config = CachingMDPConfig(max_age_ceiling=30)
        assert config.ceiling_for(5.0) == 10

    def test_ceiling_capped(self):
        config = CachingMDPConfig(max_age_ceiling=12)
        assert config.ceiling_for(100.0) == 12

    def test_invalid_discount_rejected(self):
        with pytest.raises(ValidationError):
            CachingMDPConfig(discount=1.0).validate()

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValidationError):
            CachingMDPConfig(violation_penalty=-1.0).validate()


class TestContentUpdateMDP:
    def test_state_and_action_counts(self):
        mdp = ContentUpdateMDP(max_age=5.0, popularity=0.5, update_cost=1.0)
        assert mdp.num_actions == 2
        assert mdp.num_states == mdp.grid.num_levels

    def test_transitions_are_deterministic(self):
        mdp = ContentUpdateMDP(max_age=5.0, popularity=0.5, update_cost=1.0)
        for state in range(mdp.num_states):
            for action in (0, 1):
                distribution = mdp.transition_distribution(state, action)
                assert sum(distribution.values()) == pytest.approx(1.0)
                assert len(distribution) == 1

    def test_update_leads_to_fresh_state(self):
        mdp = ContentUpdateMDP(max_age=5.0, popularity=0.5, update_cost=1.0)
        stale = mdp.grid.index_of(8)
        (next_state,) = mdp.transition_distribution(stale, 1).keys()
        assert mdp.grid.age_of(next_state) == 2  # refreshed to 1, then aged by 1

    def test_skip_ages_by_one(self):
        mdp = ContentUpdateMDP(max_age=5.0, popularity=0.5, update_cost=1.0)
        state = mdp.grid.index_of(3)
        (next_state,) = mdp.transition_distribution(state, 0).keys()
        assert mdp.grid.age_of(next_state) == 4

    def test_reward_structure(self):
        mdp = ContentUpdateMDP(
            max_age=6.0,
            popularity=0.5,
            update_cost=2.0,
            config=CachingMDPConfig(weight=1.0, violation_penalty=0.0),
        )
        stale = mdp.grid.index_of(6)
        skip = mdp.expected_reward(stale, 0)
        update = mdp.expected_reward(stale, 1)
        # skip: 0.5 * 6/6 = 0.5; update: 0.5 * 6/1 - 2 = 1.0
        assert skip == pytest.approx(0.5)
        assert update == pytest.approx(1.0)

    def test_violation_penalty_applied_to_skip(self):
        config = CachingMDPConfig(weight=1.0, violation_penalty=10.0)
        mdp = ContentUpdateMDP(
            max_age=4.0, popularity=0.5, update_cost=1.0, config=config
        )
        violating = mdp.grid.index_of(6)
        assert mdp.expected_reward(violating, 0) < -5.0
        assert mdp.expected_reward(violating, 1) > 0.0

    def test_bad_action_rejected(self):
        mdp = ContentUpdateMDP(max_age=5.0, popularity=0.5, update_cost=1.0)
        with pytest.raises(ValidationError):
            mdp.expected_reward(0, 7)

    def test_optimal_policy_refreshes_stale_content(self):
        mdp = ContentUpdateMDP(
            max_age=6.0,
            popularity=1.0,
            update_cost=1.0,
            config=CachingMDPConfig(weight=2.0, discount=0.9),
        )
        result = value_iteration(mdp, discount=0.9)
        stale = mdp.grid.index_of(mdp.grid.ceiling)
        assert result.policy[stale] == 1

    def test_free_updates_always_taken(self):
        mdp = ContentUpdateMDP(
            max_age=6.0,
            popularity=1.0,
            update_cost=0.0,
            config=CachingMDPConfig(weight=1.0),
        )
        result = value_iteration(mdp, discount=0.9)
        # With zero cost, updating dominates whenever the content is not fresh.
        for age in range(2, mdp.grid.ceiling + 1):
            assert result.policy[mdp.grid.index_of(age)] == 1


class TestRSUCachingMDP:
    @pytest.fixture
    def rsu_mdp(self):
        return RSUCachingMDP(
            max_ages=[4.0, 4.0],
            popularity=[0.5, 0.5],
            update_costs=[1.0, 1.0],
            config=CachingMDPConfig(weight=2.0, age_ceiling=5),
        )

    def test_state_space_size(self, rsu_mdp):
        assert rsu_mdp.num_states == 25
        assert rsu_mdp.num_actions == 3

    def test_encode_decode_round_trip(self, rsu_mdp):
        for ages in ([1.0, 1.0], [3.0, 5.0], [5.0, 2.0]):
            state = rsu_mdp.encode_ages(ages)
            np.testing.assert_allclose(rsu_mdp.decode_state(state), ages)

    def test_action_vector(self, rsu_mdp):
        np.testing.assert_array_equal(rsu_mdp.action_vector(0), [0, 0])
        np.testing.assert_array_equal(rsu_mdp.action_vector(2), [0, 1])

    def test_transition_updates_one_content(self, rsu_mdp):
        state = rsu_mdp.encode_ages([4.0, 3.0])
        (next_state,) = rsu_mdp.transition_distribution(state, 1).keys()
        np.testing.assert_allclose(rsu_mdp.decode_state(next_state), [2.0, 4.0])

    def test_no_update_ages_everything(self, rsu_mdp):
        state = rsu_mdp.encode_ages([2.0, 3.0])
        (next_state,) = rsu_mdp.transition_distribution(state, 0).keys()
        np.testing.assert_allclose(rsu_mdp.decode_state(next_state), [3.0, 4.0])

    def test_reward_uses_equation_1(self):
        mdp = RSUCachingMDP(
            max_ages=[4.0],
            popularity=[1.0],
            update_costs=[2.0],
            config=CachingMDPConfig(weight=1.0, age_ceiling=6, violation_penalty=0.0),
        )
        stale = mdp.encode_ages([4.0])
        assert mdp.expected_reward(stale, 0) == pytest.approx(1.0)
        assert mdp.expected_reward(stale, 1) == pytest.approx(4.0 - 2.0)

    def test_violation_penalty_counts_violations(self):
        mdp = RSUCachingMDP(
            max_ages=[3.0, 3.0],
            popularity=[0.5, 0.5],
            update_costs=[1.0, 1.0],
            config=CachingMDPConfig(weight=1.0, age_ceiling=6, violation_penalty=5.0),
        )
        both_stale = mdp.encode_ages([5.0, 5.0])
        one_fixed = mdp.expected_reward(both_stale, 1)
        none_fixed = mdp.expected_reward(both_stale, 0)
        assert one_fixed > none_fixed

    def test_state_space_limit_enforced(self):
        with pytest.raises(ConfigurationError):
            RSUCachingMDP(
                max_ages=[10.0] * 8,
                popularity=[0.125] * 8,
                update_costs=[1.0] * 8,
                config=CachingMDPConfig(age_ceiling=12),
                max_states=1000,
            )

    def test_mismatched_parameter_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            RSUCachingMDP(
                max_ages=[4.0, 4.0],
                popularity=[1.0],
                update_costs=[1.0, 1.0],
            )

    def test_optimal_policy_keeps_ages_bounded(self):
        mdp = RSUCachingMDP(
            max_ages=[4.0, 4.0],
            popularity=[0.5, 0.5],
            update_costs=[0.5, 0.5],
            config=CachingMDPConfig(weight=2.0, age_ceiling=6),
        )
        result = value_iteration(mdp, discount=0.9, tolerance=1e-7)
        # Simulate the greedy policy for 40 slots from the all-stale state.
        # Only one content can be refreshed per slot, so the other content is
        # necessarily stale during the first few slots; after that warm-up the
        # policy must keep both ages at or below their maximum.
        ages = np.array([6.0, 6.0])
        worst_after_warmup = 0.0
        for step in range(40):
            state = mdp.encode_ages(ages)
            action = int(result.policy[state])
            updates = mdp.action_vector(action)
            ages = np.where(updates > 0, 1.0, ages)
            if step >= 3:
                worst_after_warmup = max(worst_after_warmup, ages.max())
            ages = np.minimum(ages + 1.0, 6.0)
        assert worst_after_warmup <= 4.0


class TestMDPCachingPolicy:
    def test_respects_one_update_per_rsu(self):
        policy = MDPCachingPolicy(CachingMDPConfig(weight=5.0))
        observation = make_observation(np.full((3, 4), 6.0))
        actions = policy.decide(observation)
        assert actions.shape == (3, 4)
        assert np.all(actions.sum(axis=1) <= 1)

    def test_fresh_cache_not_updated_when_costly(self):
        policy = MDPCachingPolicy(CachingMDPConfig(weight=1.0))
        observation = make_observation(
            np.ones((2, 3)), costs=np.full((2, 3), 5.0)
        )
        actions = policy.decide(observation)
        assert actions.sum() == 0

    def test_stale_content_selected(self):
        policy = MDPCachingPolicy(CachingMDPConfig(weight=5.0))
        ages = np.array([[1.0, 1.0, 9.0]])
        observation = make_observation(ages, max_ages=np.full((1, 3), 6.0))
        actions = policy.decide(observation)
        assert actions[0, 2] == 1

    def test_exact_and_factored_modes_agree_on_small_instance(self):
        config = CachingMDPConfig(weight=3.0, age_ceiling=5)
        ages = np.array([[4.0, 2.0]])
        max_ages = np.array([[4.0, 4.0]])
        costs = np.array([[0.5, 0.5]])
        popularity = np.array([[0.5, 0.5]])
        observation = CacheObservation(
            time_slot=0,
            ages=ages,
            max_ages=max_ages,
            popularity=popularity,
            update_costs=costs,
        )
        exact = MDPCachingPolicy(config, mode="exact").decide(observation)
        factored = MDPCachingPolicy(config, mode="factored").decide(observation)
        np.testing.assert_array_equal(exact, factored)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            MDPCachingPolicy(mode="bogus")

    def test_models_are_reused_between_calls(self):
        policy = MDPCachingPolicy(CachingMDPConfig(weight=2.0))
        observation = make_observation(np.full((1, 2), 3.0))
        policy.decide(observation)
        first_models = dict(policy._content_models)
        policy.decide(make_observation(np.full((1, 2), 5.0)))
        assert policy._content_models == first_models

    def test_models_rebuilt_when_parameters_change(self):
        policy = MDPCachingPolicy(CachingMDPConfig(weight=2.0))
        policy.decide(make_observation(np.full((1, 2), 3.0)))
        before = dict(policy._content_models)
        policy.decide(
            make_observation(np.full((1, 2), 3.0), costs=np.full((1, 2), 9.0))
        )
        assert policy._content_models != before

    def test_update_advantages_shape(self):
        policy = MDPCachingPolicy(CachingMDPConfig(weight=2.0))
        observation = make_observation(np.full((2, 3), 4.0))
        advantages = policy.update_advantages(observation)
        assert advantages.shape == (2, 3)

    def test_advantage_increases_with_age(self):
        policy = MDPCachingPolicy(CachingMDPConfig(weight=2.0))
        fresh = policy.update_advantages(make_observation(np.full((1, 2), 1.0)))
        stale = policy.update_advantages(make_observation(np.full((1, 2), 8.0)))
        assert np.all(stale >= fresh)

    def test_reset_clears_models(self):
        policy = MDPCachingPolicy(CachingMDPConfig(weight=2.0))
        policy.decide(make_observation(np.full((1, 2), 3.0)))
        policy.reset()
        assert not policy._content_models

    @given(age=st.floats(min_value=1.0, max_value=12.0))
    @settings(max_examples=25, deadline=None)
    def test_property_actions_always_binary(self, age):
        policy = MDPCachingPolicy(CachingMDPConfig(weight=3.0))
        observation = make_observation(np.full((2, 2), age))
        actions = policy.decide(observation)
        assert set(np.unique(actions)).issubset({0, 1})
