"""Tests for repro.core.policies (observation dataclasses and policy ABCs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policies import (
    CacheObservation,
    CachingPolicy,
    ServiceObservation,
)
from repro.exceptions import ValidationError


def cache_observation(num_rsus=2, per_rsu=3) -> CacheObservation:
    shape = (num_rsus, per_rsu)
    return CacheObservation(
        time_slot=5,
        ages=np.full(shape, 2.0),
        max_ages=np.full(shape, 6.0),
        popularity=np.full(shape, 1.0 / per_rsu),
        update_costs=np.full(shape, 1.0),
    )


class TestCacheObservation:
    def test_shape_properties(self):
        observation = cache_observation(3, 4)
        assert observation.num_rsus == 3
        assert observation.contents_per_rsu == 4

    def test_1d_ages_rejected(self):
        with pytest.raises(ValidationError):
            CacheObservation(
                time_slot=0,
                ages=np.ones(3),
                max_ages=np.ones(3),
                popularity=np.ones(3),
                update_costs=np.ones(3),
            )

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValidationError):
            CacheObservation(
                time_slot=0,
                ages=np.ones((2, 3)),
                max_ages=np.ones((2, 2)),
                popularity=np.ones((2, 3)),
                update_costs=np.ones((2, 3)),
            )

    def test_mismatched_mbs_ages_rejected(self):
        with pytest.raises(ValidationError):
            CacheObservation(
                time_slot=0,
                ages=np.ones((2, 3)),
                max_ages=np.ones((2, 3)),
                popularity=np.ones((2, 3)),
                update_costs=np.ones((2, 3)),
                mbs_ages=np.ones((1, 3)),
            )

    def test_negative_time_rejected(self):
        with pytest.raises(ValidationError):
            CacheObservation(
                time_slot=-1,
                ages=np.ones((1, 1)),
                max_ages=np.ones((1, 1)),
                popularity=np.ones((1, 1)),
                update_costs=np.ones((1, 1)),
            )


class TestValidateActions:
    def test_valid_actions_pass(self):
        observation = cache_observation()
        actions = np.zeros((2, 3), dtype=int)
        actions[0, 1] = 1
        result = CachingPolicy.validate_actions(actions, observation)
        np.testing.assert_array_equal(result, actions)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValidationError):
            CachingPolicy.validate_actions(np.zeros((1, 3), dtype=int), cache_observation())

    def test_non_binary_rejected(self):
        actions = np.zeros((2, 3), dtype=int)
        actions[0, 0] = 2
        with pytest.raises(ValidationError):
            CachingPolicy.validate_actions(actions, cache_observation())

    def test_two_updates_per_rsu_rejected(self):
        actions = np.zeros((2, 3), dtype=int)
        actions[0, 0] = 1
        actions[0, 1] = 1
        with pytest.raises(ValidationError, match="at most one"):
            CachingPolicy.validate_actions(actions, cache_observation())


class TestServiceObservation:
    def test_freshness_flag(self):
        fresh = ServiceObservation(
            time_slot=0,
            rsu_id=0,
            queue_backlog=1.0,
            service_cost=1.0,
            departure=1.0,
            head_content_age=3.0,
            head_content_max_age=5.0,
        )
        stale = ServiceObservation(
            time_slot=0,
            rsu_id=0,
            queue_backlog=1.0,
            service_cost=1.0,
            departure=1.0,
            head_content_age=8.0,
            head_content_max_age=5.0,
        )
        unknown = ServiceObservation(
            time_slot=0,
            rsu_id=0,
            queue_backlog=1.0,
            service_cost=1.0,
            departure=1.0,
        )
        assert fresh.head_content_is_fresh is True
        assert stale.head_content_is_fresh is False
        assert unknown.head_content_is_fresh is None

    def test_negative_backlog_rejected(self):
        with pytest.raises(ValidationError):
            ServiceObservation(
                time_slot=0,
                rsu_id=0,
                queue_backlog=-1.0,
                service_cost=1.0,
                departure=1.0,
            )

    def test_negative_cost_rejected(self):
        with pytest.raises(ValidationError):
            ServiceObservation(
                time_slot=0,
                rsu_id=0,
                queue_backlog=1.0,
                service_cost=-1.0,
                departure=1.0,
            )

    def test_negative_departure_rejected(self):
        with pytest.raises(ValidationError):
            ServiceObservation(
                time_slot=0,
                rsu_id=0,
                queue_backlog=1.0,
                service_cost=1.0,
                departure=-1.0,
            )

    def test_negative_time_rejected(self):
        with pytest.raises(ValidationError):
            ServiceObservation(
                time_slot=-1,
                rsu_id=0,
                queue_backlog=1.0,
                service_cost=1.0,
                departure=1.0,
            )
