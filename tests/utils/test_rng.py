"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng, spawn_streams


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passed_through(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValidationError):
            ensure_rng(-1)

    def test_unsupported_type_rejected(self):
        with pytest.raises(ValidationError):
            ensure_rng("not-a-seed")


class TestSpawnStreams:
    def test_count_respected(self):
        streams = spawn_streams(0, 4)
        assert len(streams) == 4

    def test_streams_are_independent(self):
        streams = spawn_streams(0, 2)
        a = streams[0].random(10)
        b = streams[1].random(10)
        assert not np.allclose(a, b)

    def test_spawning_is_deterministic(self):
        first = [g.random(3) for g in spawn_streams(9, 3)]
        second = [g.random(3) for g in spawn_streams(9, 3)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_zero_count_allowed(self):
        assert spawn_streams(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            spawn_streams(0, -1)

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(3)
        children = spawn_streams(parent, 2)
        assert len(children) == 2
        assert not np.allclose(children[0].random(5), children[1].random(5))

    def test_spawn_from_none(self):
        children = spawn_streams(None, 2)
        assert len(children) == 2
