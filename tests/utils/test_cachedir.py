"""Tests for repro.utils.cachedir (shared cache-directory resolution).

Both on-disk caches — the MDP solve cache and the experiment run store —
resolve their location and kill switches through these helpers, so the
env-variable semantics are pinned here once: falsey spellings, opt-out
versus opt-in resolution, and the stale ``*.tmp`` sweeper that cleans up
after crashed atomic publishes.
"""

from __future__ import annotations

import os

import pytest

from repro.utils.cachedir import (
    FALSEY_VALUES,
    env_disabled,
    resolve_cache_dir,
    sweep_stale_tmp_files,
)

_DIR_ENV = "REPRO_TEST_CACHEDIR_DIR"
_KILL_ENV = "REPRO_TEST_CACHEDIR_ENABLE"


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(_DIR_ENV, raising=False)
    monkeypatch.delenv(_KILL_ENV, raising=False)


class TestEnvDisabled:
    @pytest.mark.parametrize("value", sorted(FALSEY_VALUES) + [" 0 ", "FALSE", "Off"])
    def test_falsey_spellings(self, monkeypatch, value):
        monkeypatch.setenv(_KILL_ENV, value)
        assert env_disabled(_KILL_ENV)

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "anything"])
    def test_truthy_spellings(self, monkeypatch, value):
        monkeypatch.setenv(_KILL_ENV, value)
        assert not env_disabled(_KILL_ENV)

    def test_unset_is_not_disabled(self):
        assert not env_disabled(_KILL_ENV)


class TestResolveCacheDir:
    def test_default_when_unset(self):
        assert resolve_cache_dir(_DIR_ENV, "default") == "default"

    def test_dir_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(_DIR_ENV, "/elsewhere")
        assert resolve_cache_dir(_DIR_ENV, "default") == "/elsewhere"

    def test_kill_switch_disables(self, monkeypatch):
        monkeypatch.setenv(_KILL_ENV, "0")
        assert (
            resolve_cache_dir(_DIR_ENV, "default", disable_env=_KILL_ENV) is None
        )

    def test_kill_switch_beats_dir_env(self, monkeypatch):
        monkeypatch.setenv(_DIR_ENV, "/elsewhere")
        monkeypatch.setenv(_KILL_ENV, "off")
        assert (
            resolve_cache_dir(_DIR_ENV, "default", disable_env=_KILL_ENV) is None
        )

    def test_opt_in_is_off_by_default(self):
        assert (
            resolve_cache_dir(
                _DIR_ENV, "default", disable_env=_KILL_ENV, enabled_by_default=False
            )
            is None
        )

    def test_opt_in_via_enable_env(self, monkeypatch):
        monkeypatch.setenv(_KILL_ENV, "1")
        assert (
            resolve_cache_dir(
                _DIR_ENV, "default", disable_env=_KILL_ENV, enabled_by_default=False
            )
            == "default"
        )

    def test_opt_in_via_dir_env(self, monkeypatch):
        monkeypatch.setenv(_DIR_ENV, "/elsewhere")
        assert (
            resolve_cache_dir(
                _DIR_ENV, "default", disable_env=_KILL_ENV, enabled_by_default=False
            )
            == "/elsewhere"
        )

    def test_opt_in_kill_switch_wins_over_dir_env(self, monkeypatch):
        monkeypatch.setenv(_DIR_ENV, "/elsewhere")
        monkeypatch.setenv(_KILL_ENV, "no")
        assert (
            resolve_cache_dir(
                _DIR_ENV, "default", disable_env=_KILL_ENV, enabled_by_default=False
            )
            is None
        )


class TestSweepStaleTmpFiles:
    def test_removes_only_stale_tmp_files(self, tmp_path):
        stale = tmp_path / "a.tmp"
        fresh = tmp_path / "b.tmp"
        keeper = tmp_path / "c.npz"
        for path in (stale, fresh, keeper):
            path.write_bytes(b"x")
        old = os.path.getmtime(stale) - 7200.0
        os.utime(stale, (old, old))
        removed = sweep_stale_tmp_files(str(tmp_path), max_age_seconds=3600.0)
        assert removed == 1
        assert not stale.exists()
        assert fresh.exists()
        assert keeper.exists()

    def test_zero_age_removes_everything_tmp(self, tmp_path):
        (tmp_path / "a.tmp").write_bytes(b"x")
        (tmp_path / "b.tmp").write_bytes(b"x")
        assert sweep_stale_tmp_files(str(tmp_path), max_age_seconds=0.0) == 2

    def test_missing_directory_is_noop(self, tmp_path):
        assert sweep_stale_tmp_files(str(tmp_path / "nope")) == 0

    def test_none_directory_is_noop(self):
        assert sweep_stale_tmp_files(None) == 0

    def test_explicit_now_pins_the_cutoff(self, tmp_path):
        target = tmp_path / "a.tmp"
        target.write_bytes(b"x")
        mtime = os.path.getmtime(target)
        assert (
            sweep_stale_tmp_files(
                str(tmp_path), max_age_seconds=10.0, now=mtime + 5.0
            )
            == 0
        )
        assert (
            sweep_stale_tmp_files(
                str(tmp_path), max_age_seconds=10.0, now=mtime + 20.0
            )
            == 1
        )


class TestSolveCacheIntegration:
    def test_solve_cache_resolves_through_shared_helper(self, monkeypatch):
        from repro.core import solve_cache

        monkeypatch.setenv("REPRO_SOLVE_CACHE_DIR", "/elsewhere")
        assert solve_cache.default_directory() == "/elsewhere"
        monkeypatch.setenv("REPRO_SOLVE_CACHE", "0")
        assert solve_cache.default_directory() is None

    def test_run_store_resolves_through_shared_helper(self, monkeypatch):
        from repro.runtime import store

        monkeypatch.delenv("REPRO_RUN_STORE", raising=False)
        monkeypatch.delenv("REPRO_RUN_STORE_DIR", raising=False)
        assert store.default_directory() is None  # opt-in: off by default
        monkeypatch.setenv("REPRO_RUN_STORE", "1")
        assert store.default_directory() == store.DEFAULT_DIRECTORY
        monkeypatch.setenv("REPRO_RUN_STORE_DIR", "/elsewhere")
        assert store.default_directory() == "/elsewhere"
        monkeypatch.setenv("REPRO_RUN_STORE", "0")
        assert store.default_directory() is None
