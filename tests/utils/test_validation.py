"""Tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
    check_probability_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    def test_rejects_zero(self):
        with pytest.raises(ValidationError, match="x"):
            check_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_positive(float("inf"), "x")

    def test_rejects_non_number(self):
        with pytest.raises(ValidationError):
            check_positive("3", "x")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive(True, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative(-0.1, "x")


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(3, "n") == 3

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(5), "n") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive_int(0, "n")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.0, "n")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "n")


class TestCheckInRange:
    def test_inclusive_bounds_accepted(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_bounds_rejected(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            check_in_range(1.5, "x", 0.0, 1.0)


class TestCheckProbability:
    def test_valid_probability(self):
        assert check_probability(0.3, "p") == 0.3

    def test_rejects_above_one(self):
        with pytest.raises(ValidationError):
            check_probability(1.01, "p")


class TestCheckProbabilityVector:
    def test_valid_vector_returned_normalised(self):
        result = check_probability_vector([0.25, 0.25, 0.5], "p")
        assert pytest.approx(result.sum()) == 1.0

    def test_rejects_negative_entries(self):
        with pytest.raises(ValidationError):
            check_probability_vector([0.5, -0.1, 0.6], "p")

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValidationError):
            check_probability_vector([0.5, 0.6], "p")

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_probability_vector([], "p")

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            check_probability_vector([[0.5, 0.5]], "p")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_probability_vector([0.5, float("nan")], "p")
