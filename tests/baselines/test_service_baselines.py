"""Tests for repro.baselines.service."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.service import (
    AlwaysServePolicy,
    BacklogThresholdPolicy,
    CostGreedyPolicy,
    FixedProbabilityPolicy,
    NeverServePolicy,
    standard_service_baselines,
)
from repro.core.policies import ServiceObservation
from repro.exceptions import ValidationError


def observation(backlog, *, cost=1.0, slack=None):
    return ServiceObservation(
        time_slot=0,
        rsu_id=0,
        queue_backlog=backlog,
        service_cost=cost,
        departure=1.0,
        head_deadline_slack=slack,
    )


class TestAlwaysServePolicy:
    def test_serves_when_backlog_positive(self):
        assert AlwaysServePolicy().decide(observation(1.0)) is True

    def test_idles_when_empty(self):
        assert AlwaysServePolicy().decide(observation(0.0)) is False


class TestNeverServePolicy:
    def test_never_serves(self):
        assert NeverServePolicy().decide(observation(100.0)) is False


class TestCostGreedyPolicy:
    def test_defers_without_trigger(self):
        policy = CostGreedyPolicy(backlog_cap=None)
        assert policy.decide(observation(10.0)) is False

    def test_deadline_forces_service(self):
        policy = CostGreedyPolicy(deadline_slack=1.0, backlog_cap=None)
        assert policy.decide(observation(10.0, slack=1.0)) is True
        assert policy.decide(observation(10.0, slack=5.0)) is False

    def test_backlog_cap_forces_service(self):
        policy = CostGreedyPolicy(backlog_cap=20.0)
        assert policy.decide(observation(25.0)) is True
        assert policy.decide(observation(15.0)) is False

    def test_empty_queue_never_served(self):
        policy = CostGreedyPolicy(backlog_cap=0.0)
        assert policy.decide(observation(0.0)) is False

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValidationError):
            CostGreedyPolicy(deadline_slack=-1.0)
        with pytest.raises(ValidationError):
            CostGreedyPolicy(backlog_cap=-1.0)


class TestFixedProbabilityPolicy:
    def test_probability_zero_never_serves(self):
        policy = FixedProbabilityPolicy(0.0, rng=0)
        assert not any(policy.decide(observation(5.0)) for _ in range(20))

    def test_probability_one_always_serves(self):
        policy = FixedProbabilityPolicy(1.0, rng=0)
        assert all(policy.decide(observation(5.0)) for _ in range(20))

    def test_empty_queue_never_served(self):
        policy = FixedProbabilityPolicy(1.0, rng=0)
        assert policy.decide(observation(0.0)) is False

    def test_deterministic_given_seed(self):
        a = FixedProbabilityPolicy(0.5, rng=7)
        b = FixedProbabilityPolicy(0.5, rng=7)
        decisions_a = [a.decide(observation(5.0)) for _ in range(20)]
        decisions_b = [b.decide(observation(5.0)) for _ in range(20)]
        assert decisions_a == decisions_b

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValidationError):
            FixedProbabilityPolicy(1.5)


class TestBacklogThresholdPolicy:
    def test_threshold_behaviour(self):
        policy = BacklogThresholdPolicy(threshold=5.0)
        assert policy.decide(observation(6.0)) is True
        assert policy.decide(observation(5.0)) is False
        assert policy.decide(observation(0.0)) is False

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValidationError):
            BacklogThresholdPolicy(threshold=-1.0)


class TestStandardServiceBaselines:
    def test_registry_contains_expected_policies(self):
        baselines = standard_service_baselines(rng=0)
        assert set(baselines) == {
            "always-serve",
            "cost-greedy",
            "fixed-probability",
            "backlog-threshold",
        }

    def test_all_policies_return_bool(self):
        for policy in standard_service_baselines(rng=0).values():
            decision = policy.decide(observation(3.0))
            assert isinstance(decision, bool)
