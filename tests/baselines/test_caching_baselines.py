"""Tests for repro.baselines.caching."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.caching import (
    AlwaysUpdatePolicy,
    MyopicUpdatePolicy,
    NeverUpdatePolicy,
    PeriodicUpdatePolicy,
    RandomUpdatePolicy,
    ThresholdUpdatePolicy,
    standard_caching_baselines,
)
from repro.core.policies import CacheObservation
from repro.exceptions import ValidationError


def make_observation(ages, max_ages=None, popularity=None, costs=None):
    ages = np.asarray(ages, dtype=float)
    if max_ages is None:
        max_ages = np.full_like(ages, 8.0)
    if popularity is None:
        popularity = np.full_like(ages, 1.0 / ages.shape[1])
    if costs is None:
        costs = np.full_like(ages, 1.0)
    return CacheObservation(
        time_slot=0,
        ages=ages,
        max_ages=np.asarray(max_ages, dtype=float),
        popularity=np.asarray(popularity, dtype=float),
        update_costs=np.asarray(costs, dtype=float),
    )


class TestNeverUpdatePolicy:
    def test_never_updates(self):
        policy = NeverUpdatePolicy()
        actions = policy.decide(make_observation(np.full((3, 4), 20.0)))
        assert actions.sum() == 0


class TestAlwaysUpdatePolicy:
    def test_updates_stalest_per_rsu(self):
        ages = np.array([[2.0, 9.0, 5.0], [7.0, 1.0, 3.0]])
        actions = AlwaysUpdatePolicy().decide(make_observation(ages))
        np.testing.assert_array_equal(actions, [[0, 1, 0], [1, 0, 0]])

    def test_one_update_per_rsu_every_slot(self):
        actions = AlwaysUpdatePolicy().decide(make_observation(np.ones((4, 5))))
        np.testing.assert_array_equal(actions.sum(axis=1), 1)


class TestPeriodicUpdatePolicy:
    def test_cycles_through_contents(self):
        policy = PeriodicUpdatePolicy(period=1)
        observation = make_observation(np.ones((1, 3)))
        chosen = [int(np.argmax(policy.decide(observation))) for _ in range(6)]
        assert chosen == [0, 1, 2, 0, 1, 2]

    def test_period_spacing(self):
        policy = PeriodicUpdatePolicy(period=2)
        observation = make_observation(np.ones((1, 2)))
        updates = [int(policy.decide(observation).sum()) for _ in range(4)]
        assert updates == [1, 0, 1, 0]

    def test_reset_restarts_cycle(self):
        policy = PeriodicUpdatePolicy(period=1)
        observation = make_observation(np.ones((1, 3)))
        policy.decide(observation)
        policy.reset()
        actions = policy.decide(observation)
        assert int(np.argmax(actions)) == 0

    def test_invalid_period_rejected(self):
        with pytest.raises(ValidationError):
            PeriodicUpdatePolicy(period=0)


class TestRandomUpdatePolicy:
    def test_rate_zero_never_updates(self):
        policy = RandomUpdatePolicy(rate=0.0, rng=0)
        assert policy.decide(make_observation(np.ones((3, 3)))).sum() == 0

    def test_rate_one_always_updates(self):
        policy = RandomUpdatePolicy(rate=1.0, rng=0)
        actions = policy.decide(make_observation(np.ones((3, 3))))
        np.testing.assert_array_equal(actions.sum(axis=1), 1)

    def test_deterministic_given_seed(self):
        observation = make_observation(np.ones((2, 4)))
        a = RandomUpdatePolicy(rate=0.5, rng=3)
        b = RandomUpdatePolicy(rate=0.5, rng=3)
        for _ in range(5):
            np.testing.assert_array_equal(a.decide(observation), b.decide(observation))

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValidationError):
            RandomUpdatePolicy(rate=1.5)


class TestThresholdUpdatePolicy:
    def test_no_update_below_threshold(self):
        policy = ThresholdUpdatePolicy(threshold=0.8)
        ages = np.array([[2.0, 3.0]])
        actions = policy.decide(make_observation(ages, max_ages=np.full((1, 2), 10.0)))
        assert actions.sum() == 0

    def test_updates_most_exceeded_content(self):
        policy = ThresholdUpdatePolicy(threshold=0.5)
        ages = np.array([[6.0, 9.0]])
        actions = policy.decide(make_observation(ages, max_ages=np.full((1, 2), 10.0)))
        np.testing.assert_array_equal(actions, [[0, 1]])

    def test_threshold_relative_to_each_max_age(self):
        policy = ThresholdUpdatePolicy(threshold=0.9)
        ages = np.array([[5.0, 5.0]])
        max_ages = np.array([[5.0, 50.0]])
        actions = policy.decide(make_observation(ages, max_ages=max_ages))
        np.testing.assert_array_equal(actions, [[1, 0]])

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValidationError):
            ThresholdUpdatePolicy(threshold=1.5)


class TestMyopicUpdatePolicy:
    def test_skips_when_gain_negative(self):
        # Cost far larger than any one-step AoI gain.
        policy = MyopicUpdatePolicy(weight=1.0)
        observation = make_observation(
            np.full((1, 2), 4.0), costs=np.full((1, 2), 100.0)
        )
        assert policy.decide(observation).sum() == 0

    def test_updates_best_gain(self):
        policy = MyopicUpdatePolicy(weight=10.0)
        ages = np.array([[2.0, 9.0]])
        actions = policy.decide(make_observation(ages))
        np.testing.assert_array_equal(actions, [[0, 1]])

    def test_fresh_cache_never_updated(self):
        policy = MyopicUpdatePolicy(weight=10.0)
        assert policy.decide(make_observation(np.ones((2, 3)))).sum() == 0

    def test_popularity_breaks_ties(self):
        policy = MyopicUpdatePolicy(weight=10.0)
        ages = np.array([[5.0, 5.0]])
        popularity = np.array([[0.9, 0.1]])
        actions = policy.decide(make_observation(ages, popularity=popularity))
        np.testing.assert_array_equal(actions, [[1, 0]])


class TestStandardBaselines:
    def test_registry_contains_expected_policies(self):
        baselines = standard_caching_baselines(rng=0)
        assert set(baselines) == {
            "never",
            "always",
            "periodic",
            "random",
            "threshold",
            "myopic",
        }

    @given(age=st.floats(min_value=1.0, max_value=30.0))
    @settings(max_examples=20, deadline=None)
    def test_property_all_baselines_respect_constraint(self, age):
        observation = make_observation(np.full((3, 4), age))
        for policy in standard_caching_baselines(rng=1).values():
            actions = policy.decide(observation)
            assert actions.shape == (3, 4)
            assert np.all(actions.sum(axis=1) <= 1)
            assert set(np.unique(actions)).issubset({0, 1})
