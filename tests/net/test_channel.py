"""Tests for repro.net.channel (cost models and link budgets)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, ValidationError
from repro.net.channel import (
    ConstantCostModel,
    DistanceCostModel,
    FadingCostModel,
    LinkBudget,
)


class TestConstantCostModel:
    def test_cost_independent_of_inputs(self):
        model = ConstantCostModel(2.5)
        assert model.cost() == 2.5
        assert model.cost(distance=1000.0, size=3.0, time_slot=7) == 2.5

    def test_zero_cost_allowed(self):
        assert ConstantCostModel(0.0).cost() == 0.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ValidationError):
            ConstantCostModel(-1.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValidationError):
            ConstantCostModel(1.0).cost(distance=-1.0)

    def test_non_positive_size_rejected(self):
        with pytest.raises(ValidationError):
            ConstantCostModel(1.0).cost(size=0.0)


class TestDistanceCostModel:
    def test_affine_in_distance(self):
        model = DistanceCostModel(base=1.0, slope=0.01)
        assert model.cost(distance=0.0) == pytest.approx(1.0)
        assert model.cost(distance=100.0) == pytest.approx(2.0)

    def test_proportional_to_size(self):
        model = DistanceCostModel(base=2.0, slope=0.0)
        assert model.cost(size=3.0) == pytest.approx(6.0)

    def test_all_zero_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            DistanceCostModel(base=0.0, slope=0.0)

    @given(
        distance=st.floats(min_value=0.0, max_value=1e4),
        size=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_cost_non_negative_and_monotone_in_distance(self, distance, size):
        model = DistanceCostModel(base=1.0, slope=0.002)
        near = model.cost(distance=distance, size=size)
        far = model.cost(distance=distance + 10.0, size=size)
        assert near >= 0
        assert far >= near


class TestFadingCostModel:
    def test_gain_constant_within_slot(self):
        model = FadingCostModel(base=1.0, slope=0.0, sigma=0.5, rng=0)
        first = model.cost(time_slot=3)
        second = model.cost(time_slot=3)
        assert first == pytest.approx(second)

    def test_gain_varies_across_slots(self):
        model = FadingCostModel(base=1.0, slope=0.0, sigma=0.5, rng=0)
        costs = {model.cost(time_slot=t) for t in range(20)}
        assert len(costs) > 1

    def test_deterministic_given_seed(self):
        a = FadingCostModel(sigma=0.3, rng=5)
        b = FadingCostModel(sigma=0.3, rng=5)
        assert [a.cost(time_slot=t) for t in range(5)] == [
            b.cost(time_slot=t) for t in range(5)
        ]

    def test_zero_sigma_is_static(self):
        model = FadingCostModel(base=2.0, slope=0.0, sigma=0.0, rng=0)
        assert model.cost(time_slot=0) == pytest.approx(2.0)
        assert model.cost(time_slot=9) == pytest.approx(2.0)

    def test_costs_always_positive(self):
        model = FadingCostModel(base=1.0, slope=0.0, sigma=1.0, rng=1)
        assert all(model.cost(time_slot=t) > 0 for t in range(50))

    def test_negative_time_slot_rejected(self):
        with pytest.raises(ValidationError):
            FadingCostModel(rng=0).advance(-1)


class TestLinkBudget:
    def test_accumulates_cost_and_count(self):
        budget = LinkBudget()
        budget.charge(2.0)
        budget.charge(3.0)
        assert budget.total_cost == pytest.approx(5.0)
        assert budget.num_transfers == 2
        assert budget.mean_cost == pytest.approx(2.5)

    def test_mean_of_empty_budget_is_nan(self):
        assert np.isnan(LinkBudget().mean_cost)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValidationError):
            LinkBudget().charge(-1.0)

    def test_reset(self):
        budget = LinkBudget()
        budget.charge(1.0)
        budget.reset()
        assert budget.total_cost == 0.0
        assert budget.num_transfers == 0
