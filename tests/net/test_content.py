"""Tests for repro.net.content (content catalog and popularity)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, ValidationError
from repro.net.content import ContentCatalog, ContentDescriptor, zipf_popularity


class TestContentDescriptor:
    def test_valid_descriptor(self):
        descriptor = ContentDescriptor(content_id=0, region=0, max_age=5.0)
        assert descriptor.size == 1.0

    def test_negative_id_rejected(self):
        with pytest.raises(ValidationError):
            ContentDescriptor(content_id=-1, region=0, max_age=5.0)

    def test_non_positive_max_age_rejected(self):
        with pytest.raises(ValidationError):
            ContentDescriptor(content_id=0, region=0, max_age=0.0)

    def test_non_positive_size_rejected(self):
        with pytest.raises(ValidationError):
            ContentDescriptor(content_id=0, region=0, max_age=5.0, size=0.0)


class TestContentCatalog:
    def test_uniform_factory(self):
        catalog = ContentCatalog.uniform(5, max_age=8.0)
        assert catalog.num_contents == 5
        np.testing.assert_allclose(catalog.max_ages, 8.0)
        np.testing.assert_allclose(catalog.popularity, 0.2)

    def test_heterogeneous_factory(self):
        catalog = ContentCatalog.heterogeneous([4.0, 6.0, 8.0])
        np.testing.assert_allclose(catalog.max_ages, [4.0, 6.0, 8.0])

    def test_random_factory_respects_range(self):
        catalog = ContentCatalog.random(20, min_max_age=5.0, max_max_age=9.0, rng=0)
        assert np.all(catalog.max_ages >= 5.0)
        assert np.all(catalog.max_ages <= 9.0)

    def test_random_factory_is_deterministic(self):
        a = ContentCatalog.random(10, rng=3).max_ages
        b = ContentCatalog.random(10, rng=3).max_ages
        np.testing.assert_array_equal(a, b)

    def test_random_factory_bad_range_rejected(self):
        with pytest.raises(ConfigurationError):
            ContentCatalog.random(5, min_max_age=10.0, max_max_age=5.0)

    def test_ids_must_be_contiguous(self):
        descriptors = [
            ContentDescriptor(content_id=0, region=0, max_age=5.0),
            ContentDescriptor(content_id=2, region=1, max_age=5.0),
        ]
        with pytest.raises(ConfigurationError):
            ContentCatalog(descriptors)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ContentCatalog([])

    def test_indexing(self):
        catalog = ContentCatalog.uniform(3)
        assert catalog[1].content_id == 1
        with pytest.raises(ValidationError):
            catalog[3]

    def test_iteration(self):
        catalog = ContentCatalog.uniform(4)
        assert [d.content_id for d in catalog] == [0, 1, 2, 3]

    def test_for_regions(self):
        catalog = ContentCatalog.uniform(4)
        selected = catalog.for_regions([2, 0])
        assert [d.region for d in selected] == [2, 0]

    def test_for_regions_unknown_rejected(self):
        with pytest.raises(ValidationError):
            ContentCatalog.uniform(2).for_regions([5])

    def test_subset_popularity_renormalised(self):
        catalog = ContentCatalog.uniform(4)
        subset = catalog.subset_popularity([0, 1])
        assert subset.sum() == pytest.approx(1.0)
        assert subset.shape == (2,)

    def test_subset_popularity_empty_rejected(self):
        with pytest.raises(ValidationError):
            ContentCatalog.uniform(4).subset_popularity([])

    def test_custom_popularity_length_checked(self):
        descriptors = [
            ContentDescriptor(content_id=0, region=0, max_age=5.0),
            ContentDescriptor(content_id=1, region=1, max_age=5.0),
        ]
        with pytest.raises(ConfigurationError):
            ContentCatalog(descriptors, popularity=[0.5, 0.3, 0.2])

    def test_sizes_property(self):
        catalog = ContentCatalog.uniform(3, size=2.5)
        np.testing.assert_allclose(catalog.sizes, 2.5)


class TestZipfPopularity:
    def test_zero_exponent_is_uniform(self):
        np.testing.assert_allclose(zipf_popularity(4, 0.0), 0.25)

    def test_positive_exponent_skews(self):
        popularity = zipf_popularity(5, 1.0)
        assert popularity[0] > popularity[-1]
        assert popularity.sum() == pytest.approx(1.0)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValidationError):
            zipf_popularity(5, -0.5)

    def test_bad_count_rejected(self):
        with pytest.raises(ValidationError):
            zipf_popularity(0, 1.0)

    @given(
        count=st.integers(min_value=1, max_value=50),
        exponent=st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_is_distribution(self, count, exponent):
        popularity = zipf_popularity(count, exponent)
        assert popularity.shape == (count,)
        assert popularity.sum() == pytest.approx(1.0)
        assert np.all(popularity > 0)

    @given(count=st.integers(min_value=2, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_property_monotone_non_increasing(self, count):
        popularity = zipf_popularity(count, 1.2)
        assert np.all(np.diff(popularity) <= 1e-15)
