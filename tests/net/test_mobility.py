"""Tests for repro.net.mobility (vehicles and fleets)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.net.mobility import (
    RandomSpeedMobility,
    UniformSpeedMobility,
    Vehicle,
    VehicleFleet,
)
from repro.net.topology import RoadTopology


@pytest.fixture
def topology():
    return RoadTopology(4, 2, region_length=100.0)


class TestVehicle:
    def test_advance(self):
        vehicle = Vehicle(vehicle_id=0, position=0.0, speed=20.0)
        vehicle.advance(3)
        assert vehicle.position == pytest.approx(60.0)

    def test_negative_position_rejected(self):
        with pytest.raises(ValidationError):
            Vehicle(vehicle_id=0, position=-1.0, speed=10.0)

    def test_non_positive_speed_rejected(self):
        with pytest.raises(ValidationError):
            Vehicle(vehicle_id=0, position=0.0, speed=0.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValidationError):
            Vehicle(vehicle_id=0, position=0.0, speed=10.0).advance(-1)


class TestMobilityModels:
    def test_uniform_speed(self, rng):
        model = UniformSpeedMobility(15.0)
        assert model.initial_speed(rng) == 15.0

    def test_uniform_rejects_non_positive(self):
        with pytest.raises(ValidationError):
            UniformSpeedMobility(0.0)

    def test_random_speed_in_range(self, rng):
        model = RandomSpeedMobility(min_speed=10.0, max_speed=20.0)
        speeds = [model.initial_speed(rng) for _ in range(50)]
        assert all(10.0 <= s <= 20.0 for s in speeds)

    def test_random_bad_range_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomSpeedMobility(min_speed=20.0, max_speed=10.0)

    def test_jitter_keeps_speed_in_range(self, rng):
        model = RandomSpeedMobility(min_speed=10.0, max_speed=20.0, jitter=5.0)
        vehicle = Vehicle(vehicle_id=0, position=0.0, speed=15.0)
        for _ in range(100):
            vehicle.speed = model.update_speed(vehicle, rng)
            assert 10.0 <= vehicle.speed <= 20.0

    def test_zero_jitter_keeps_speed_constant(self, rng):
        model = RandomSpeedMobility(min_speed=10.0, max_speed=20.0, jitter=0.0)
        vehicle = Vehicle(vehicle_id=0, position=0.0, speed=12.0)
        assert model.update_speed(vehicle, rng) == 12.0


class TestVehicleFleet:
    def test_initial_vehicles_placed_on_road(self, topology):
        fleet = VehicleFleet(
            topology, UniformSpeedMobility(10.0), initial_vehicles=5, rng=0
        )
        assert len(fleet) == 5
        assert all(0 <= v.position < topology.road_length for v in fleet)

    def test_vehicles_depart_at_road_end(self, topology):
        fleet = VehicleFleet(
            topology,
            UniformSpeedMobility(100.0),
            arrival_rate=0.0,
            initial_vehicles=3,
            rng=0,
        )
        departed_total = 0
        for t in range(10):
            _, departed = fleet.step(t)
            departed_total += len(departed)
        assert departed_total == 3
        assert len(fleet) == 0
        assert fleet.total_departed == 3

    def test_arrivals_counted(self, topology):
        fleet = VehicleFleet(
            topology, UniformSpeedMobility(1.0), arrival_rate=1.0, rng=0
        )
        for t in range(5):
            fleet.step(t)
        assert fleet.total_arrived == 5

    def test_zero_arrival_rate_never_admits(self, topology):
        fleet = VehicleFleet(
            topology, UniformSpeedMobility(1.0), arrival_rate=0.0, rng=0
        )
        for t in range(20):
            fleet.step(t)
        assert fleet.total_arrived == 0

    def test_vehicles_in_rsu(self, topology):
        fleet = VehicleFleet(
            topology, UniformSpeedMobility(10.0), arrival_rate=0.0, rng=0
        )
        fleet._admit(position=50.0, time_slot=0)
        fleet._admit(position=350.0, time_slot=0)
        assert len(fleet.vehicles_in_rsu(0)) == 1
        assert len(fleet.vehicles_in_rsu(1)) == 1

    def test_rsu_of_vehicle(self, topology):
        fleet = VehicleFleet(
            topology, UniformSpeedMobility(10.0), arrival_rate=0.0, rng=0
        )
        vehicle = fleet._admit(position=250.0, time_slot=0)
        assert fleet.rsu_of(vehicle.vehicle_id) == 1

    def test_expected_dwell_slots(self, topology):
        fleet = VehicleFleet(
            topology, UniformSpeedMobility(10.0), arrival_rate=0.0, rng=0
        )
        vehicle = fleet._admit(position=150.0, time_slot=0)
        # Coverage of RSU 0 ends at 200 m; at 10 m/slot that is 5 slots away.
        assert fleet.expected_dwell_slots(vehicle.vehicle_id) == pytest.approx(5.0)

    def test_unknown_vehicle_rejected(self, topology):
        fleet = VehicleFleet(topology, UniformSpeedMobility(10.0), rng=0)
        with pytest.raises(ValidationError):
            fleet.vehicle(999)

    def test_negative_initial_vehicles_rejected(self, topology):
        with pytest.raises(ValidationError):
            VehicleFleet(topology, UniformSpeedMobility(10.0), initial_vehicles=-1)

    def test_deterministic_given_seed(self, topology):
        def run(seed):
            fleet = VehicleFleet(
                topology,
                RandomSpeedMobility(min_speed=5.0, max_speed=15.0),
                arrival_rate=0.7,
                rng=seed,
            )
            counts = []
            for t in range(30):
                fleet.step(t)
                counts.append(len(fleet))
            return counts

        assert run(4) == run(4)
