"""Tests for repro.net.cache (RSU caches and the MBS content store)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CacheError, ValidationError
from repro.net.cache import MBSContentStore, RSUCache
from repro.net.content import ContentCatalog


@pytest.fixture
def catalog():
    return ContentCatalog.heterogeneous([4.0, 6.0, 8.0, 10.0])


@pytest.fixture
def cache(catalog):
    return RSUCache(0, [0, 1], catalog)


class TestRSUCache:
    def test_initial_state_is_fresh(self, cache):
        np.testing.assert_allclose(cache.ages, 1.0)
        assert cache.capacity == 2
        assert not cache.violations.any()

    def test_tick_ages_all_contents(self, cache):
        cache.tick(3)
        np.testing.assert_allclose(cache.ages, 4.0)

    def test_apply_update_resets_single_content(self, cache):
        cache.tick(5)
        cache.apply_update(1)
        assert cache.age_of(0) == 6.0
        assert cache.age_of(1) == 1.0
        assert cache.update_count == 1

    def test_update_unknown_content_rejected(self, cache):
        with pytest.raises(CacheError):
            cache.apply_update(3)

    def test_holds(self, cache):
        assert cache.holds(0)
        assert not cache.holds(2)

    def test_entry_snapshot(self, cache):
        cache.tick(5)
        entry = cache.entry(0)
        assert entry.age == 6.0
        assert entry.max_age == 4.0
        assert not entry.is_fresh
        assert entry.utility == pytest.approx(4.0 / 6.0)

    def test_is_fresh(self, cache):
        assert cache.is_fresh(0)
        cache.tick(10)
        assert not cache.is_fresh(0)

    def test_violations_mask(self, catalog):
        cache = RSUCache(0, [0, 3], catalog)
        cache.tick(5)  # ages 6; A_max 4 and 10
        np.testing.assert_array_equal(cache.violations, [True, False])

    def test_randomize_ages_within_limits(self, catalog):
        cache = RSUCache(0, [0, 1, 2, 3], catalog)
        cache.randomize_ages(rng=0)
        assert np.all(cache.ages >= 1.0)
        assert np.all(cache.ages <= cache.max_ages)

    def test_randomize_ages_deterministic(self, catalog):
        a = RSUCache(0, [0, 1], catalog)
        b = RSUCache(0, [0, 1], catalog)
        a.randomize_ages(rng=9)
        b.randomize_ages(rng=9)
        np.testing.assert_array_equal(a.ages, b.ages)

    def test_randomize_ages_bad_low_rejected(self, cache):
        with pytest.raises(ValidationError):
            cache.randomize_ages(rng=0, low=0.0)

    def test_snapshot_restore_round_trip(self, cache):
        cache.tick(4)
        cache.apply_update(0)
        snapshot = cache.snapshot()
        cache.tick(7)
        cache.restore(snapshot)
        assert cache.snapshot() == snapshot

    def test_duplicate_content_ids_rejected(self, catalog):
        with pytest.raises(CacheError):
            RSUCache(0, [0, 0], catalog)

    def test_empty_cache_rejected(self, catalog):
        with pytest.raises(CacheError):
            RSUCache(0, [], catalog)

    def test_slot_of(self, cache):
        assert cache.slot_of(1) == 1
        with pytest.raises(CacheError):
            cache.slot_of(9)

    def test_ages_saturate_at_ceiling(self, cache):
        cache.tick(1000)
        assert np.all(cache.ages <= cache.age_ceiling)

    @given(updates=st.lists(st.integers(0, 1), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_property_age_bounded_by_slots_since_update(self, updates):
        catalog = ContentCatalog.heterogeneous([4.0, 6.0, 8.0, 10.0])
        cache = RSUCache(0, [0, 1], catalog)
        slots_since = 0
        for do_update in updates:
            if do_update:
                cache.apply_update(0)
                slots_since = 0
            cache.tick(1)
            slots_since += 1
            assert cache.age_of(0) <= min(1 + slots_since, cache.age_ceiling)


class TestMBSContentStore:
    def test_default_regenerates_every_slot(self, catalog):
        store = MBSContentStore(catalog)
        for t in range(1, 6):
            store.tick(t)
            np.testing.assert_allclose(store.ages, 1.0)

    def test_longer_generation_period(self, catalog):
        store = MBSContentStore(catalog, generation_period=3)
        store.tick(1)
        store.tick(2)
        assert store.age_of(0) == 3.0
        store.tick(3)
        assert store.age_of(0) == 1.0

    def test_invalid_period_rejected(self, catalog):
        with pytest.raises(ValidationError):
            MBSContentStore(catalog, generation_period=0)

    def test_unknown_content_rejected(self, catalog):
        store = MBSContentStore(catalog)
        with pytest.raises(ValidationError):
            store.age_of(17)


class TestLruContentCache:
    def make(self, capacity=3):
        from repro.net.cache import LruContentCache

        return LruContentCache(capacity)

    def test_put_get_and_age(self):
        cache = self.make()
        assert cache.put(1, age=2.0) is None
        assert cache.has(1)
        assert cache.age_of(1) == 2.0
        assert cache.get(1)
        assert not cache.get(9)

    def test_eviction_is_lru(self):
        cache = self.make(capacity=2)
        cache.put(1)
        cache.put(2)
        assert cache.get(1)  # promotes 1; 2 becomes LRU
        evicted = cache.put(3)
        assert evicted == 2
        assert cache.has(1) and cache.has(3) and not cache.has(2)

    def test_put_refreshes_existing_without_eviction(self):
        cache = self.make(capacity=2)
        cache.put(1, age=5.0)
        cache.put(2)
        assert cache.put(1, age=1.0) is None
        assert cache.age_of(1) == 1.0
        assert len(cache) == 2

    def test_tick_ages_all_contents(self):
        cache = self.make()
        cache.put(1, age=1.0)
        cache.put(2, age=3.0)
        cache.tick(2)
        assert cache.age_of(1) == 3.0
        assert cache.age_of(2) == 5.0

    def test_missing_age_raises(self):
        from repro.exceptions import CacheError

        cache = self.make()
        with pytest.raises(CacheError):
            cache.age_of(4)

    def test_capacity_validated(self):
        from repro.exceptions import ValidationError
        from repro.net.cache import LruContentCache

        with pytest.raises(ValidationError):
            LruContentCache(0)

    def test_clear(self):
        cache = self.make()
        cache.put(1)
        cache.clear()
        assert len(cache) == 0 and not cache.has(1)
