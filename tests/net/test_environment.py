"""Tests for repro.net.environment (time-varying road conditions)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, ValidationError
from repro.net.environment import (
    DEFAULT_TRANSITIONS,
    DynamicContentRequirements,
    DynamicPopularityModel,
    RegionState,
    RegionStateProcess,
)


class TestRegionStateProcess:
    def test_initial_states_default_to_free_flow(self):
        process = RegionStateProcess(4, rng=0)
        assert process.states == [RegionState.FREE_FLOW] * 4

    def test_custom_initial_states(self):
        process = RegionStateProcess(
            2, initial_states=[RegionState.CONGESTED, RegionState.DENSE], rng=0
        )
        assert process.state_of(0) == RegionState.CONGESTED
        assert process.state_of(1) == RegionState.DENSE

    def test_initial_state_length_checked(self):
        with pytest.raises(ConfigurationError):
            RegionStateProcess(3, initial_states=[RegionState.FREE_FLOW], rng=0)

    def test_step_returns_valid_states(self):
        process = RegionStateProcess(5, rng=0)
        for _ in range(20):
            states = process.step()
            assert all(isinstance(state, RegionState) for state in states)

    def test_history_shape(self):
        process = RegionStateProcess(3, rng=0)
        history = process.run(10)
        assert history.shape == (11, 3)

    def test_deterministic_given_seed(self):
        a = RegionStateProcess(4, rng=9)
        b = RegionStateProcess(4, rng=9)
        np.testing.assert_array_equal(a.run(30), b.run(30))

    def test_occupancy_sums_to_one(self):
        process = RegionStateProcess(3, rng=1)
        process.run(50)
        occupancy = process.occupancy()
        assert sum(occupancy.values()) == pytest.approx(1.0)

    def test_sticky_transitions_visit_multiple_states(self):
        process = RegionStateProcess(10, rng=2)
        history = process.run(200)
        assert len(np.unique(history)) >= 3

    def test_absorbing_matrix_respected(self):
        # A matrix that never leaves free flow keeps every region there.
        matrix = np.eye(4)
        process = RegionStateProcess(3, transition_matrix=matrix, rng=0)
        history = process.run(20)
        assert np.all(history == int(RegionState.FREE_FLOW))

    def test_bad_matrix_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            RegionStateProcess(2, transition_matrix=np.ones((2, 2)), rng=0)

    def test_non_stochastic_matrix_rejected(self):
        matrix = DEFAULT_TRANSITIONS.copy()
        matrix[0, 0] += 0.5
        with pytest.raises(ValidationError):
            RegionStateProcess(2, transition_matrix=matrix, rng=0)

    def test_region_index_checked(self):
        with pytest.raises(ValidationError):
            RegionStateProcess(2, rng=0).state_of(5)

    def test_negative_regions_rejected(self):
        with pytest.raises(ValidationError):
            RegionStateProcess(0, rng=0)

    def test_negative_run_rejected(self):
        with pytest.raises(ValidationError):
            RegionStateProcess(1, rng=0).run(-1)


class TestDynamicPopularityModel:
    def test_popularity_is_distribution(self):
        process = RegionStateProcess(4, rng=0)
        model = DynamicPopularityModel(process)
        popularity = model.popularity_for([0, 1, 2, 3])
        assert popularity.sum() == pytest.approx(1.0)

    def test_congested_region_gets_more_weight(self):
        process = RegionStateProcess(
            2,
            initial_states=[RegionState.FREE_FLOW, RegionState.CONGESTED],
            rng=0,
        )
        model = DynamicPopularityModel(process)
        popularity = model.popularity_for([0, 1])
        assert popularity[1] > popularity[0]

    def test_popularity_matrix_shape(self):
        process = RegionStateProcess(4, rng=0)
        model = DynamicPopularityModel(process)
        matrix = model.popularity_matrix([[0, 1], [2, 3]])
        assert matrix.shape == (2, 2)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_uneven_rsu_sizes_rejected(self):
        process = RegionStateProcess(3, rng=0)
        model = DynamicPopularityModel(process)
        with pytest.raises(ConfigurationError):
            model.popularity_matrix([[0, 1], [2]])

    def test_empty_contents_rejected(self):
        model = DynamicPopularityModel(RegionStateProcess(1, rng=0))
        with pytest.raises(ValidationError):
            model.popularity_for([])

    def test_incomplete_urgency_table_rejected(self):
        with pytest.raises(ConfigurationError):
            DynamicPopularityModel(
                RegionStateProcess(1, rng=0),
                urgency={RegionState.FREE_FLOW: 1.0},
            )

    def test_popularity_tracks_state_changes(self):
        process = RegionStateProcess(2, rng=3)
        model = DynamicPopularityModel(process)
        before = model.popularity_for([0, 1]).copy()
        # Force a state change by running the chain until states differ.
        for _ in range(200):
            process.step()
            if process.states != [RegionState.FREE_FLOW, RegionState.FREE_FLOW]:
                break
        after = model.popularity_for([0, 1])
        assert before.shape == after.shape


class TestDynamicContentRequirements:
    def test_free_flow_keeps_base_max_age(self):
        process = RegionStateProcess(2, rng=0)
        requirements = DynamicContentRequirements(process, [10.0, 8.0])
        np.testing.assert_allclose(requirements.effective_max_ages(), [10.0, 8.0])

    def test_urgent_state_tightens_max_age(self):
        process = RegionStateProcess(
            1, initial_states=[RegionState.INCIDENT], rng=0
        )
        requirements = DynamicContentRequirements(process, [16.0], tightening=0.5)
        # Incident is urgency level 3: 16 * 0.5^3 = 2.
        assert requirements.effective_max_age(0) == pytest.approx(2.0)

    def test_floor_respected(self):
        process = RegionStateProcess(
            1, initial_states=[RegionState.INCIDENT], rng=0
        )
        requirements = DynamicContentRequirements(
            process, [4.0], tightening=0.5, min_max_age=3.0
        )
        assert requirements.effective_max_age(0) == pytest.approx(3.0)

    def test_wrong_length_rejected(self):
        process = RegionStateProcess(2, rng=0)
        with pytest.raises(ConfigurationError):
            DynamicContentRequirements(process, [10.0])

    def test_bad_tightening_rejected(self):
        process = RegionStateProcess(1, rng=0)
        with pytest.raises(ConfigurationError):
            DynamicContentRequirements(process, [10.0], tightening=1.0)

    @given(slots=st.integers(min_value=1, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_property_effective_max_age_positive(self, slots):
        process = RegionStateProcess(3, rng=slots)
        requirements = DynamicContentRequirements(process, [6.0, 9.0, 12.0])
        process.run(slots)
        assert np.all(requirements.effective_max_ages() > 0)
