"""Tests for repro.net.topology (road, RSUs, MBS)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, ValidationError
from repro.net.topology import Region, RoadTopology, RSU


class TestRegion:
    def test_geometry(self):
        region = Region(region_id=1, start=100.0, end=200.0)
        assert region.length == 100.0
        assert region.center == 150.0
        assert region.contains(150.0)
        assert not region.contains(200.0)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValidationError):
            Region(region_id=0, start=10.0, end=10.0)

    def test_negative_id_rejected(self):
        with pytest.raises(ValidationError):
            Region(region_id=-1, start=0.0, end=1.0)


class TestRSU:
    def test_coverage_query(self):
        rsu = RSU(
            rsu_id=0,
            position=100.0,
            covered_regions=(0, 1),
            coverage_start=0.0,
            coverage_end=200.0,
        )
        assert rsu.covers(50.0)
        assert not rsu.covers(200.0)
        assert rsu.num_cached_contents == 2

    def test_empty_coverage_rejected(self):
        with pytest.raises(ValidationError):
            RSU(
                rsu_id=0,
                position=0.0,
                covered_regions=(),
                coverage_start=0.0,
                coverage_end=1.0,
            )


class TestRoadTopology:
    def test_basic_dimensions(self):
        topology = RoadTopology(20, 4, region_length=50.0)
        assert topology.num_regions == 20
        assert topology.num_rsus == 4
        assert topology.regions_per_rsu == 5
        assert topology.road_length == 1000.0

    def test_indivisible_regions_rejected(self):
        with pytest.raises(ConfigurationError):
            RoadTopology(10, 3)

    def test_every_region_covered_exactly_once(self):
        topology = RoadTopology(12, 3)
        covered = [r for rsu in topology.rsus for r in rsu.covered_regions]
        assert sorted(covered) == list(range(12))

    def test_mbs_at_centre(self):
        topology = RoadTopology(10, 2, region_length=100.0)
        assert topology.mbs.position == 500.0
        assert topology.mbs.num_contents == 10

    def test_region_at_positions(self):
        topology = RoadTopology(4, 2, region_length=100.0)
        assert topology.region_at(0.0).region_id == 0
        assert topology.region_at(399.0).region_id == 3
        assert topology.region_at(400.0) is None
        assert topology.region_at(-1.0) is None

    def test_rsu_at_positions(self):
        topology = RoadTopology(4, 2, region_length=100.0)
        assert topology.rsu_at(50.0).rsu_id == 0
        assert topology.rsu_at(350.0).rsu_id == 1
        assert topology.rsu_at(500.0) is None

    def test_rsu_for_region(self):
        topology = RoadTopology(6, 3)
        assert topology.rsu_for_region(0).rsu_id == 0
        assert topology.rsu_for_region(5).rsu_id == 2
        with pytest.raises(ValidationError):
            topology.rsu_for_region(6)

    def test_contents_of_rsu_match_regions(self):
        topology = RoadTopology(6, 2)
        assert topology.contents_of_rsu(0) == (0, 1, 2)
        assert topology.contents_of_rsu(1) == (3, 4, 5)

    def test_mbs_distances_symmetry(self):
        topology = RoadTopology(4, 2, region_length=100.0)
        distances = topology.mbs_distances()
        assert distances.shape == (2,)
        assert distances[0] == pytest.approx(distances[1])

    def test_index_bounds(self):
        topology = RoadTopology(4, 2)
        with pytest.raises(ValidationError):
            topology.region(4)
        with pytest.raises(ValidationError):
            topology.rsu(2)

    @given(
        regions_per_rsu=st.integers(min_value=1, max_value=6),
        num_rsus=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_coverage_partition(self, regions_per_rsu, num_rsus):
        topology = RoadTopology(regions_per_rsu * num_rsus, num_rsus)
        # Every position on the road maps to exactly one RSU.
        for position in np.linspace(0, topology.road_length - 1e-6, 25):
            rsu = topology.rsu_at(float(position))
            assert rsu is not None
            region = topology.region_at(float(position))
            assert region.region_id in rsu.covered_regions


class TestRsuForPositions:
    """The vectorised coverage query every scalar lookup routes through."""

    def test_matches_scalar_lookup(self):
        topology = RoadTopology(20, 4, region_length=50.0)
        positions = np.array([0.0, 49.9, 250.0, 999.9, 1000.0, -1.0, np.nan])
        expected = []
        for position in positions:
            rsu = topology.rsu_at(float(position))
            expected.append(-1 if rsu is None else rsu.rsu_id)
        assert topology.rsu_for_positions(positions).tolist() == expected

    def test_off_road_maps_to_minus_one(self):
        topology = RoadTopology(12, 3)
        out = topology.rsu_for_positions(
            np.array([-0.001, topology.road_length, np.inf, -np.inf, np.nan])
        )
        assert out.tolist() == [-1, -1, -1, -1, -1]

    def test_dtype_and_shape(self):
        topology = RoadTopology(12, 3)
        positions = np.linspace(0.0, topology.road_length - 1.0, 7)
        out = topology.rsu_for_positions(positions)
        assert out.shape == positions.shape
        assert out.dtype == np.int64
        assert (out >= 0).all()

    @given(
        position=st.floats(
            min_value=-100.0, max_value=1200.0, allow_nan=False
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_region_arithmetic(self, position):
        topology = RoadTopology(20, 4, region_length=50.0)
        result = int(topology.rsu_for_positions(np.array([position]))[0])
        if 0.0 <= position < topology.road_length:
            region = topology.region_at(position)
            assert result == topology.rsu_for_region(region.region_id).rsu_id
        else:
            assert result == -1
