"""Tests for the graph-backed network core (model, view, controller)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError, ValidationError
from repro.net.controller import NetworkController
from repro.net.model import (
    TOPOLOGY_KINDS,
    NetworkModel,
    build_network_graph,
    deterministic_shortest_paths,
)
from repro.net.topology import RoadTopology
from repro.net.view import NetworkView

nx = pytest.importorskip("networkx")


def make_topology(num_rsus: int = 4, regions_per_rsu: int = 3) -> RoadTopology:
    return RoadTopology(num_rsus * regions_per_rsu, num_rsus)


class TestBuildNetworkGraph:
    def test_star_wires_every_rsu_to_origin(self):
        topology = make_topology(4)
        graph = build_network_graph(topology, kind="star")
        origin = topology.num_rsus
        assert sorted(graph.nodes) == [0, 1, 2, 3, origin]
        assert sorted(graph.edges) == [(k, origin) for k in range(4)]
        assert graph.nodes[origin]["role"] == "origin"

    def test_line_is_a_chain_with_one_gateway(self):
        topology = make_topology(4)
        graph = build_network_graph(topology, kind="line")
        origin = topology.num_rsus
        chain = [(k, k + 1) for k in range(3)]
        gateways = [
            (u, v) for u, v in graph.edges if origin in (u, v)
        ]
        assert len(gateways) == 1
        for edge in chain:
            assert graph.has_edge(*edge)
        assert graph.number_of_edges() == len(chain) + 1

    def test_ring_closes_the_chain(self):
        topology = make_topology(4)
        graph = build_network_graph(topology, kind="ring")
        assert graph.has_edge(0, 3)

    def test_edge_delays_positive(self):
        graph = build_network_graph(make_topology(3), kind="line")
        for _, _, data in graph.edges(data=True):
            assert data["delay"] > 0.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            build_network_graph(make_topology(3), kind="mesh")


class TestNetworkModel:
    def test_default_capacity_matches_coverage(self):
        topology = make_topology(4, regions_per_rsu=3)
        model = NetworkModel(topology)
        assert model.cache_capacity == 3
        assert list(model.cache_nodes()) == [0, 1, 2, 3]
        assert not model.has_cache(model.origin)

    def test_kinds_enumerated(self):
        assert TOPOLOGY_KINDS == ("star", "line", "ring")
        for kind in TOPOLOGY_KINDS:
            model = NetworkModel(make_topology(3), kind=kind)
            assert model.kind == kind

    def test_paths_end_at_origin(self):
        model = NetworkModel(make_topology(4), kind="line")
        for node in range(4):
            path = model.shortest_path(node, model.origin)
            assert path[0] == node
            assert path[-1] == model.origin

    def test_path_delay_accumulates_edges(self):
        model = NetworkModel(make_topology(4), kind="line")
        path = model.shortest_path(0, model.origin)
        total = sum(
            model.edge_delay(path[i], path[i + 1]) for i in range(len(path) - 1)
        )
        assert model.path_delay(0, model.origin) == pytest.approx(total)

    def test_missing_edge_rejected(self):
        model = NetworkModel(make_topology(4), kind="star")
        with pytest.raises(ValidationError):
            model.edge_delay(0, 1)

    def test_star_betweenness_peaks_at_origin(self):
        model = NetworkModel(make_topology(4), kind="star")
        origin = model.origin
        assert model.betweenness(origin) >= max(
            model.betweenness(k) for k in range(4)
        )


class TestDeterministicShortestPaths:
    @settings(max_examples=25, deadline=None)
    @given(
        num_rsus=st.integers(min_value=2, max_value=7),
        kind=st.sampled_from(TOPOLOGY_KINDS),
        permutation_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_invariant_under_node_order_permutation(
        self, num_rsus, kind, permutation_seed
    ):
        """Routing is a pure function of the graph, not its insertion order."""
        import random

        graph = build_network_graph(make_topology(num_rsus), kind=kind)
        shuffled = nx.Graph()
        nodes = list(graph.nodes(data=True))
        edges = list(graph.edges(data=True))
        shuffler = random.Random(permutation_seed)
        shuffler.shuffle(nodes)
        shuffler.shuffle(edges)
        shuffled.add_nodes_from(nodes)
        shuffled.add_edges_from(edges)
        paths_a, delays_a = deterministic_shortest_paths(graph)
        paths_b, delays_b = deterministic_shortest_paths(shuffled)
        assert paths_a == paths_b
        assert delays_a == delays_b

    def test_paths_are_contiguous_graph_walks(self):
        graph = build_network_graph(make_topology(6), kind="ring")
        paths, delays = deterministic_shortest_paths(graph)
        for source, targets in paths.items():
            for target, path in targets.items():
                assert path[0] == source and path[-1] == target
                for u, v in zip(path, path[1:]):
                    assert graph.has_edge(u, v)
                total = sum(
                    graph.edges[u, v]["delay"] for u, v in zip(path, path[1:])
                )
                assert delays[source][target] == pytest.approx(total)


class TestNetworkController:
    def make(self, kind="line"):
        model = NetworkModel(make_topology(4), kind=kind)
        return model, NetworkView(model), NetworkController(model)

    def test_origin_always_serves(self):
        model, view, controller = self.make()
        path = view.shortest_path(0, model.origin)
        controller.start_session(0, 0, 0)
        assert not controller.get_content(0)  # cold cache
        for u, v in zip(path, path[1:]):
            controller.forward_request_hop(u, v)
        assert controller.get_content(model.origin)
        result = controller.end_session()
        assert not result.hit
        assert result.serving_node == model.origin
        assert result.hops == len(path) - 1
        assert result.path == path

    def test_cache_hit_accounting(self):
        model, view, controller = self.make()
        model.cache(2).put(7, age=1.0)
        controller.start_session(0, 2, 7)
        assert controller.get_content(2)
        result = controller.end_session()
        assert result.hit and result.hops == 0 and result.latency == 0.0

    def test_stale_copy_is_not_served(self):
        model, view, controller = self.make()
        model.cache(1).put(3, age=9.0)
        controller.start_session(0, 1, 3, max_age=5.0)
        assert not controller.get_content(1)
        controller.abort_session()

    def test_double_start_rejected(self):
        _, _, controller = self.make()
        controller.start_session(0, 0, 0)
        with pytest.raises(SimulationError):
            controller.start_session(0, 1, 1)

    def test_tick_ages_every_cache(self):
        model, _, controller = self.make()
        model.cache(0).put(1, age=1.0)
        model.cache(3).put(2, age=4.0)
        controller.tick(2)
        assert model.cache(0).age_of(1) == pytest.approx(3.0)
        assert model.cache(3).age_of(2) == pytest.approx(6.0)
