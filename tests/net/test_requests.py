"""Tests for repro.net.requests (workload generation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, ValidationError
from repro.net.content import ContentCatalog
from repro.net.requests import (
    BernoulliArrivals,
    DeterministicArrivals,
    PoissonArrivals,
    Request,
    RequestGenerator,
)
from repro.net.topology import RoadTopology


@pytest.fixture
def topology():
    return RoadTopology(6, 2)


@pytest.fixture
def catalog():
    return ContentCatalog.uniform(6, max_age=8.0)


class TestRequest:
    def test_valid_request(self):
        request = Request(request_id=0, time_slot=3, rsu_id=1, content_id=4)
        assert request.deadline is None

    def test_deadline_before_issue_rejected(self):
        with pytest.raises(ValidationError):
            Request(request_id=0, time_slot=5, rsu_id=0, content_id=0, deadline=4)

    def test_negative_fields_rejected(self):
        with pytest.raises(ValidationError):
            Request(request_id=0, time_slot=-1, rsu_id=0, content_id=0)
        with pytest.raises(ValidationError):
            Request(request_id=0, time_slot=0, rsu_id=-1, content_id=0)
        with pytest.raises(ValidationError):
            Request(request_id=0, time_slot=0, rsu_id=0, content_id=-1)


class TestArrivalProcesses:
    def test_bernoulli_mean(self):
        assert BernoulliArrivals(0.3).mean == 0.3

    def test_bernoulli_samples_binary(self, rng):
        process = BernoulliArrivals(0.5)
        samples = {process.sample(rng) for _ in range(50)}
        assert samples.issubset({0, 1})

    def test_bernoulli_extremes(self, rng):
        assert BernoulliArrivals(0.0).sample(rng) == 0
        assert BernoulliArrivals(1.0).sample(rng) == 1

    def test_bernoulli_rate_validated(self):
        with pytest.raises(ValidationError):
            BernoulliArrivals(1.5)

    def test_poisson_mean_approx(self, rng):
        process = PoissonArrivals(2.0)
        samples = [process.sample(rng) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(2.0, abs=0.2)

    def test_poisson_negative_rate_rejected(self):
        with pytest.raises(ValidationError):
            PoissonArrivals(-1.0)

    def test_deterministic_count(self, rng):
        process = DeterministicArrivals(3)
        assert process.sample(rng) == 3
        assert process.mean == 3.0

    def test_deterministic_negative_rejected(self):
        with pytest.raises(ValidationError):
            DeterministicArrivals(-1)


class TestRequestGenerator:
    def test_catalog_topology_size_mismatch_rejected(self, topology):
        with pytest.raises(ConfigurationError):
            RequestGenerator(topology, ContentCatalog.uniform(5))

    def test_requests_target_local_contents(self, topology, catalog):
        generator = RequestGenerator(
            topology, catalog, arrivals=DeterministicArrivals(2), rng=0
        )
        for request in generator.generate_trace(20):
            assert request.content_id in topology.contents_of_rsu(request.rsu_id)

    def test_request_ids_unique(self, topology, catalog):
        generator = RequestGenerator(
            topology, catalog, arrivals=DeterministicArrivals(2), rng=0
        )
        trace = generator.generate_trace(30)
        ids = [r.request_id for r in trace]
        assert len(ids) == len(set(ids))

    def test_trace_is_time_ordered(self, topology, catalog):
        generator = RequestGenerator(
            topology, catalog, arrivals=DeterministicArrivals(1), rng=0
        )
        trace = generator.generate_trace(15)
        slots = [r.time_slot for r in trace]
        assert slots == sorted(slots)

    def test_deadline_slots_applied(self, topology, catalog):
        generator = RequestGenerator(
            topology, catalog, arrivals=DeterministicArrivals(1), rng=0
        )
        trace = generator.generate_trace(5, deadline_slots=3)
        assert all(r.deadline == r.time_slot + 3 for r in trace)

    def test_zero_arrivals_yield_empty_slot(self, topology, catalog):
        generator = RequestGenerator(
            topology, catalog, arrivals=BernoulliArrivals(0.0), rng=0
        )
        assert generator.generate_slot(0) == []

    def test_content_population_is_distribution(self, topology, catalog):
        generator = RequestGenerator(topology, catalog, rng=0)
        for rsu in topology.rsus:
            population = generator.content_population(rsu.rsu_id)
            assert set(population) == set(rsu.covered_regions)
            assert sum(population.values()) == pytest.approx(1.0)

    def test_zipf_exponent_skews_local_popularity(self, topology, catalog):
        generator = RequestGenerator(topology, catalog, zipf_exponent=1.5, rng=0)
        popularity = generator.local_popularity(0)
        assert popularity[0] > popularity[-1]

    def test_unknown_rsu_rejected(self, topology, catalog):
        generator = RequestGenerator(topology, catalog, rng=0)
        with pytest.raises(ValidationError):
            generator.local_popularity(99)

    def test_deterministic_given_seed(self, topology, catalog):
        def run(seed):
            generator = RequestGenerator(
                topology, catalog, arrivals=BernoulliArrivals(0.7), rng=seed
            )
            return [(r.rsu_id, r.content_id) for r in generator.generate_trace(40)]

        assert run(11) == run(11)

    def test_mean_load_per_rsu(self, topology, catalog):
        generator = RequestGenerator(
            topology, catalog, arrivals=PoissonArrivals(1.5), rng=0
        )
        assert generator.mean_load_per_rsu == 1.5

    def test_negative_time_slot_rejected(self, topology, catalog):
        generator = RequestGenerator(topology, catalog, rng=0)
        with pytest.raises(ValidationError):
            generator.generate_slot(-1)

    def test_empty_trace_length_rejected(self, topology, catalog):
        generator = RequestGenerator(topology, catalog, rng=0)
        with pytest.raises(ValidationError):
            generator.generate_trace(0)

    @given(rate=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_property_bernoulli_load_at_most_one_per_rsu_per_slot(self, rate):
        topology = RoadTopology(4, 2)
        catalog = ContentCatalog.uniform(4)
        generator = RequestGenerator(
            topology, catalog, arrivals=BernoulliArrivals(rate), rng=0
        )
        for t in range(10):
            requests = generator.generate_slot(t)
            per_rsu = {}
            for request in requests:
                per_rsu[request.rsu_id] = per_rsu.get(request.rsu_id, 0) + 1
            assert all(count <= 1 for count in per_rsu.values())
