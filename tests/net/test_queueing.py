"""Tests for repro.net.queueing (request queues and backlog queues)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QueueError, ValidationError
from repro.net.queueing import BacklogQueue, RequestQueue
from repro.net.requests import Request


def request(request_id: int, time_slot: int = 0, rsu_id: int = 0, deadline=None) -> Request:
    return Request(
        request_id=request_id,
        time_slot=time_slot,
        rsu_id=rsu_id,
        content_id=0,
        deadline=deadline,
    )


class TestRequestQueue:
    def test_enqueue_and_backlog(self):
        queue = RequestQueue(0)
        queue.enqueue(request(0))
        queue.enqueue(request(1))
        assert queue.backlog == 2
        assert not queue.is_empty

    def test_wrong_rsu_rejected(self):
        queue = RequestQueue(0)
        with pytest.raises(QueueError):
            queue.enqueue(request(0, rsu_id=1))

    def test_fifo_service_order(self):
        queue = RequestQueue(0)
        queue.enqueue_many([request(0, 0), request(1, 1), request(2, 2)])
        served = queue.serve(time_slot=5, count=2)
        assert [s.request.request_id for s in served] == [0, 1]
        assert queue.backlog == 1

    def test_waiting_time_recorded(self):
        queue = RequestQueue(0)
        queue.enqueue(request(0, time_slot=2))
        (record,) = queue.serve(time_slot=7)
        assert record.waiting_slots == 5
        assert not record.expired

    def test_serve_more_than_backlog(self):
        queue = RequestQueue(0)
        queue.enqueue(request(0))
        served = queue.serve(time_slot=1, count=5)
        assert len(served) == 1
        assert queue.is_empty

    def test_serve_negative_count_rejected(self):
        with pytest.raises(QueueError):
            RequestQueue(0).serve(time_slot=0, count=-1)

    def test_total_waiting(self):
        queue = RequestQueue(0)
        queue.enqueue(request(0, time_slot=0))
        queue.enqueue(request(1, time_slot=2))
        assert queue.total_waiting(4) == (4 - 0) + (4 - 2)

    def test_total_waiting_empty_queue(self):
        assert RequestQueue(0).total_waiting(10) == 0

    def test_max_length_drops_excess(self):
        queue = RequestQueue(0, max_length=2)
        accepted = queue.enqueue_many([request(i) for i in range(4)])
        assert accepted == 2
        assert queue.dropped_count == 2

    def test_expire_removes_overdue_requests(self):
        queue = RequestQueue(0)
        queue.enqueue(request(0, time_slot=0, deadline=2))
        queue.enqueue(request(1, time_slot=0, deadline=9))
        expired = queue.expire(time_slot=5)
        assert len(expired) == 1
        assert expired[0].expired
        assert queue.backlog == 1
        assert queue.expired_count == 1

    def test_expire_keeps_requests_without_deadline(self):
        queue = RequestQueue(0)
        queue.enqueue(request(0))
        assert queue.expire(time_slot=100) == []
        assert queue.backlog == 1

    def test_mean_service_latency(self):
        queue = RequestQueue(0)
        queue.enqueue(request(0, time_slot=0))
        queue.enqueue(request(1, time_slot=0))
        queue.serve(time_slot=2, count=1)
        queue.serve(time_slot=4, count=1)
        assert queue.mean_service_latency() == pytest.approx(3.0)

    def test_mean_service_latency_empty_is_nan(self):
        assert np.isnan(RequestQueue(0).mean_service_latency())

    def test_head_and_clear(self):
        queue = RequestQueue(0)
        assert queue.head() is None
        queue.enqueue(request(7))
        assert queue.head().request_id == 7
        queue.clear()
        assert queue.is_empty


class TestBacklogQueue:
    def test_lindley_recursion(self):
        queue = BacklogQueue()
        queue.step(arrivals=3.0, departures=0.0)
        queue.step(arrivals=1.0, departures=2.0)
        assert queue.backlog == pytest.approx(2.0)

    def test_departures_truncated_at_zero(self):
        queue = BacklogQueue(initial_backlog=1.0)
        queue.step(arrivals=0.0, departures=5.0)
        assert queue.backlog == 0.0
        assert queue.total_departures == pytest.approx(1.0)

    def test_history_includes_initial_value(self):
        queue = BacklogQueue(initial_backlog=2.0)
        queue.step(1.0, 0.0)
        np.testing.assert_allclose(queue.history, [2.0, 3.0])

    def test_time_average(self):
        queue = BacklogQueue()
        queue.step(2.0, 0.0)
        queue.step(2.0, 0.0)
        assert queue.time_average == pytest.approx((0 + 2 + 4) / 3)

    def test_negative_arrivals_rejected(self):
        with pytest.raises(ValidationError):
            BacklogQueue().step(-1.0, 0.0)

    def test_negative_departures_rejected(self):
        with pytest.raises(ValidationError):
            BacklogQueue().step(0.0, -1.0)

    def test_stability_detects_growth(self):
        growing = BacklogQueue()
        for _ in range(100):
            growing.step(arrivals=1.0, departures=0.0)
        assert not growing.is_stable()

    def test_stability_accepts_bounded_queue(self):
        bounded = BacklogQueue()
        for t in range(100):
            bounded.step(arrivals=1.0, departures=1.0)
        assert bounded.is_stable()

    def test_reset(self):
        queue = BacklogQueue()
        queue.step(5.0, 0.0)
        queue.reset(initial_backlog=1.0)
        assert queue.backlog == 1.0
        assert queue.history.shape == (1,)

    def test_short_history_considered_stable(self):
        queue = BacklogQueue()
        queue.step(100.0, 0.0)
        assert queue.is_stable()

    @given(
        steps=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0),
                st.floats(min_value=0.0, max_value=5.0),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_backlog_never_negative(self, steps):
        queue = BacklogQueue()
        for arrivals, departures in steps:
            queue.step(arrivals, departures)
            assert queue.backlog >= 0.0

    @given(
        steps=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0),
                st.floats(min_value=0.0, max_value=5.0),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_flow_conservation(self, steps):
        queue = BacklogQueue()
        for arrivals, departures in steps:
            queue.step(arrivals, departures)
        assert queue.backlog == pytest.approx(
            queue.total_arrivals - queue.total_departures
        )
