"""Tests for repro.cli (the command-line interface)."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parses(self):
        arguments = build_parser().parse_args(["list"])
        assert arguments.command == "list"

    def test_run_command_defaults(self):
        arguments = build_parser().parse_args(["run", "E1"])
        assert arguments.experiments == ["E1"]
        # None at parse time so --spec runs can reject the inapplicable
        # flags; the experiment path applies the 300/0/1 defaults itself.
        assert arguments.slots is None
        assert arguments.seed is None
        assert arguments.seeds is None

    def test_run_command_overrides(self):
        arguments = build_parser().parse_args(
            ["run", "E1", "E2", "--slots", "50", "--seed", "3"]
        )
        assert arguments.experiments == ["E1", "E2"]
        assert arguments.slots == 50
        assert arguments.seed == 3

    def test_figures_command_parses(self):
        arguments = build_parser().parse_args(["figures", "--slots", "40"])
        assert arguments.command == "figures"
        assert arguments.slots == 40

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_experiments(self):
        out = io.StringIO()
        exit_code = main(["list"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        for experiment_id in ("E1", "E2", "E7"):
            assert experiment_id in text

    def test_run_single_experiment(self):
        out = io.StringIO()
        exit_code = main(["run", "E3", "--slots", "80"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        assert "[E3]" in text
        assert "PASS" in text
        assert "reproduced" in text

    def test_run_multiple_experiments(self):
        out = io.StringIO()
        exit_code = main(["run", "e3", "E1", "--slots", "80"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        assert "[E1]" in text and "[E3]" in text

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(Exception):
            main(["run", "E42", "--slots", "10"], out=io.StringIO())

    def test_figures_prints_both_panels(self):
        out = io.StringIO()
        exit_code = main(["figures", "--slots", "60"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        assert "Fig. 1a" in text
        assert "Fig. 1b" in text


class TestProfileFlag:
    def test_profile_flag_parses(self):
        arguments = build_parser().parse_args(["run", "E1", "--profile"])
        assert arguments.profile is True
        assert build_parser().parse_args(["run", "E1"]).profile is False

    def test_profile_appends_hotspot_report(self):
        out = io.StringIO()
        exit_code = main(["run", "E3", "--slots", "60", "--profile"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        # The run report still prints, followed by the cProfile table.
        assert "[E3]" in text
        assert "Top 20 hotspots (cumulative time)" in text
        assert "cumtime" in text


class TestCacheCommand:
    @pytest.fixture
    def isolated_cache_dir(self, tmp_path, monkeypatch):
        from repro.core import solve_cache

        directory = tmp_path / "solves"
        monkeypatch.setenv("REPRO_SOLVE_CACHE_DIR", str(directory))
        monkeypatch.delenv("REPRO_SOLVE_CACHE", raising=False)
        solve_cache.reset_solve_cache()
        yield directory
        solve_cache.reset_solve_cache()

    def test_cache_stats_prints_directory(self, isolated_cache_dir):
        out = io.StringIO()
        assert main(["cache"], out=out) == 0
        text = out.getvalue()
        assert str(isolated_cache_dir) in text
        assert "Persisted solves: 0" in text

    def test_cache_clear_removes_persisted_solves(self, isolated_cache_dir):
        from repro.core.caching_mdp import ContentUpdateMDP
        from repro.core.solve_cache import global_solve_cache, solve_key
        from repro.core.solvers import value_iteration

        result = value_iteration(
            ContentUpdateMDP(max_age=3.0, popularity=0.5, update_cost=1.0),
            discount=0.9,
        )
        global_solve_cache().put(solve_key("k", x=1.0), result)
        out = io.StringIO()
        assert main(["cache"], out=out) == 0
        assert "Persisted solves: 1" in out.getvalue()
        out = io.StringIO()
        assert main(["cache", "--clear"], out=out) == 0
        assert "Cleared 1" in out.getvalue()
        assert not any(isolated_cache_dir.glob("*.npz"))

    def test_cache_disabled_via_env(self, monkeypatch):
        from repro.core import solve_cache

        monkeypatch.setenv("REPRO_SOLVE_CACHE", "0")
        solve_cache.reset_solve_cache()
        out = io.StringIO()
        assert main(["cache"], out=out) == 0
        assert "disabled" in out.getvalue()
        solve_cache.reset_solve_cache()


class TestWorkloadFlag:
    def test_workload_flag_parses(self):
        arguments = build_parser().parse_args(
            ["run", "E2", "--workload", "drift:period=25,step=0.4"]
        )
        assert arguments.workload == "drift:period=25,step=0.4"
        assert build_parser().parse_args(["run", "E2"]).workload is None

    def test_run_with_workload_end_to_end(self):
        out = io.StringIO()
        exit_code = main(
            ["run", "E2", "--slots", "80", "--workload", "drift:period=20"],
            out=out,
        )
        assert exit_code == 0
        assert "[E2]" in out.getvalue()

    def test_run_with_unknown_workload_raises(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "E2", "--slots", "10", "--workload", "bogus"],
                 out=io.StringIO())

    def test_run_with_invalid_workload_param_raises(self):
        with pytest.raises(Exception):
            main(
                ["run", "E2", "--slots", "10", "--workload", "drift:period=0"],
                out=io.StringIO(),
            )

    def test_figures_with_workload(self):
        out = io.StringIO()
        exit_code = main(
            ["figures", "--slots", "50", "--workload",
             "flash-crowd:burst_prob=0.1"],
            out=out,
        )
        assert exit_code == 0
        assert "Fig. 1a" in out.getvalue()

    def test_e8_runs_the_workload_grid(self):
        out = io.StringIO()
        exit_code = main(["run", "E8", "--slots", "60"], out=out)
        assert exit_code == 0
        assert "[E8]" in out.getvalue()


class TestWorkloadsCommand:
    def test_lists_registered_models_and_parameters(self):
        out = io.StringIO()
        exit_code = main(["workloads"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        for name in ("stationary", "drift", "flash-crowd", "shot-noise", "trace"):
            assert name in text
        assert "burst_prob" in text
        assert "period" in text


class TestPoliciesCommand:
    def test_lists_both_roles_and_parameters(self):
        out = io.StringIO()
        exit_code = main(["policies"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        assert "Caching (stage 1):" in text
        assert "Service (stage 2):" in text
        for name in ("mdp", "lyapunov", "threshold", "cost-greedy"):
            assert name in text
        assert "tradeoff_v" in text
        assert "exact_state_limit" in text


class TestSpecRuns:
    @pytest.fixture
    def spec_path(self, tmp_path):
        from repro.runtime import ExperimentSpec, save_specs
        from repro.sim.scenario import ScenarioConfig

        path = str(tmp_path / "experiments.json")
        save_specs(
            [
                ExperimentSpec(
                    kind="cache",
                    scenario=ScenarioConfig.small(seed=1, num_slots=30),
                    policy="mdp",
                    num_seeds=2,
                    label="tiny",
                )
            ],
            path,
        )
        return path

    def test_spec_flag_parses(self, spec_path):
        arguments = build_parser().parse_args(["run", "--spec", spec_path])
        assert arguments.spec == spec_path
        assert arguments.experiments == []

    def test_run_spec_file_end_to_end(self, spec_path):
        out = io.StringIO()
        exit_code = main(["run", "--spec", spec_path], out=out)
        assert exit_code == 0
        text = out.getvalue()
        assert "Ran 2 run(s)" in text
        assert "tiny" in text

    def test_run_spec_writes_out_json(self, spec_path, tmp_path):
        import json

        out_path = str(tmp_path / "results.json")
        out = io.StringIO()
        exit_code = main(
            ["run", "--spec", spec_path, "--out", out_path], out=out
        )
        assert exit_code == 0
        document = json.load(open(out_path))
        assert len(document["rows"]) == 2
        assert document["aggregate"][0]["label"] == "tiny"

    def test_policy_override_changes_the_policy(self, spec_path):
        out = io.StringIO()
        exit_code = main(
            ["run", "--spec", spec_path, "--policy", "threshold:threshold=0.6"],
            out=out,
        )
        assert exit_code == 0
        assert "threshold" in out.getvalue()

    def test_workload_override_applies_to_spec_scenarios(self, spec_path):
        out = io.StringIO()
        exit_code = main(
            ["run", "--spec", spec_path, "--workload", "drift:period=10"],
            out=out,
        )
        assert exit_code == 0

    def test_wrong_role_policy_override_fails(self, spec_path):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="service policy"):
            main(["run", "--spec", spec_path, "--policy", "lyapunov"],
                 out=io.StringIO())

    def test_explicit_seeds_one_overrides_spec_counts(self, spec_path):
        out = io.StringIO()
        exit_code = main(["run", "--spec", spec_path, "--seeds", "1"], out=out)
        assert exit_code == 0
        assert "Ran 1 run(s)" in out.getvalue()

    def test_slots_rejected_with_spec(self, spec_path):
        out = io.StringIO()
        assert main(["run", "--spec", spec_path, "--slots", "50"], out=out) == 2
        assert "--slots" in out.getvalue()

    def test_mixed_kind_specs_render_one_table_per_kind(self):
        import os

        example = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "examples",
            "spec.json",
        )
        out = io.StringIO()
        assert main(["run", "--spec", example], out=out) == 0
        text = out.getvalue()
        assert "[cache]" in text and "[joint]" in text
        # The joint row renders its own columns instead of blank cells.
        assert "service_time_average_cost" in text

    def test_run_without_ids_or_spec_errors(self):
        out = io.StringIO()
        assert main(["run"], out=out) == 2
        assert "error" in out.getvalue()

    def test_ids_and_spec_together_error(self, spec_path):
        out = io.StringIO()
        assert main(["run", "E1", "--spec", spec_path], out=out) == 2
        assert "error" in out.getvalue()

    def test_policy_without_spec_errors(self):
        out = io.StringIO()
        assert main(["run", "E1", "--policy", "mdp"], out=out) == 2
        assert "--spec" in out.getvalue()

    def test_example_spec_file_runs(self):
        import os

        example = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "examples",
            "spec.json",
        )
        out = io.StringIO()
        exit_code = main(["run", "--spec", example], out=out)
        assert exit_code == 0
        assert "tiny-joint" in out.getvalue()


class TestRunStoreFlag:
    @pytest.fixture
    def spec_path(self, tmp_path):
        from repro.runtime import ExperimentSpec, save_specs
        from repro.sim.scenario import ScenarioConfig

        path = str(tmp_path / "experiments.json")
        save_specs(
            [
                ExperimentSpec(
                    kind="cache",
                    scenario=ScenarioConfig.small(seed=1, num_slots=30),
                    policy="periodic:period=2",
                    num_seeds=3,
                    label="tiny",
                )
            ],
            path,
        )
        return path

    def test_store_flag_parses(self, spec_path, tmp_path):
        arguments = build_parser().parse_args(["run", "--spec", spec_path])
        assert arguments.store is None
        arguments = build_parser().parse_args(
            ["run", "--spec", spec_path, "--store"]
        )
        assert arguments.store is True
        arguments = build_parser().parse_args(
            ["run", "--spec", spec_path, "--store", str(tmp_path / "runs")]
        )
        assert arguments.store == str(tmp_path / "runs")

    def test_store_rejected_without_spec(self):
        out = io.StringIO()
        assert main(["run", "E1", "--store"], out=out) == 2
        assert "--store" in out.getvalue()

    def test_run_twice_reports_hits(self, spec_path, tmp_path):
        store_dir = str(tmp_path / "runs")
        out = io.StringIO()
        assert main(
            ["run", "--spec", spec_path, "--store", store_dir], out=out
        ) == 0
        first = out.getvalue()
        assert "cached=0 dispatched=3 total=3 hit_rate=0.0%" in first
        out = io.StringIO()
        assert main(
            ["run", "--spec", spec_path, "--store", store_dir], out=out
        ) == 0
        second = out.getvalue()
        assert "cached=3 dispatched=0 total=3 hit_rate=100.0%" in second
        # The warm pass renders the identical aggregate table.
        assert first.split("[cache]")[1] == second.split("[cache]")[1]

    def test_run_without_store_reports_nothing(self, spec_path):
        out = io.StringIO()
        assert main(["run", "--spec", spec_path], out=out) == 0
        assert "Run store:" not in out.getvalue()


class TestResultsCommand:
    @pytest.fixture
    def store_dir(self, tmp_path):
        from repro.runtime import ExperimentRunner, ExperimentSpec
        from repro.sim.scenario import ScenarioConfig

        directory = str(tmp_path / "runs")
        scenario = ScenarioConfig.small(seed=1, num_slots=30)
        specs = [
            ExperimentSpec(
                kind="cache",
                scenario=scenario,
                policy=policy,
                num_seeds=2,
                label=label,
            )
            for label, policy in [
                ("tiny-p2", "periodic:period=2"),
                ("tiny-p3", "periodic:period=3"),
            ]
        ]
        ExperimentRunner(workers=1).run_grid(specs, store=directory)
        return directory

    def test_results_table(self, store_dir):
        out = io.StringIO()
        assert main(["results", "--dir", store_dir], out=out) == 0
        text = out.getvalue()
        assert "4 row(s)" in text
        assert "[cache]" in text
        assert "tiny-p2" in text and "tiny-p3" in text

    def test_results_label_glob(self, store_dir):
        out = io.StringIO()
        assert main(
            ["results", "--dir", store_dir, "--label", "*-p3"], out=out
        ) == 0
        text = out.getvalue()
        assert "2 row(s)" in text
        assert "tiny-p2" not in text

    def test_results_aggregate(self, store_dir):
        out = io.StringIO()
        assert main(["results", "--dir", store_dir, "--aggregate"], out=out) == 0
        text = out.getvalue()
        assert "4 row(s), 2 label(s)" in text
        assert "_ci" in text  # multi-seed rows carry confidence intervals

    def test_results_json_export(self, store_dir, tmp_path):
        import json

        out_path = str(tmp_path / "rows.json")
        out = io.StringIO()
        assert main(
            ["results", "--dir", store_dir, "--json", "--aggregate",
             "--out", out_path],
            out=out,
        ) == 0
        document = json.load(open(out_path))
        assert len(document["rows"]) == 4
        assert len(document["aggregate"]) == 2
        assert {row["label"] for row in document["aggregate"]} == {
            "tiny-p2", "tiny-p3"
        }

    def test_results_csv(self, store_dir):
        import csv

        out = io.StringIO()
        assert main(["results", "--dir", store_dir, "--csv"], out=out) == 0
        rows = list(csv.DictReader(io.StringIO(out.getvalue())))
        assert len(rows) == 4
        assert rows[0]["label"] == "tiny-p2"
        assert "total_reward" in rows[0]

    def test_results_kind_filter_no_match(self, store_dir):
        out = io.StringIO()
        assert main(
            ["results", "--dir", store_dir, "--kind", "service"], out=out
        ) == 0
        assert "no rows match" in out.getvalue()

    def test_results_missing_store(self, tmp_path):
        out = io.StringIO()
        assert main(
            ["results", "--dir", str(tmp_path / "nope")], out=out
        ) == 0
        assert "empty" in out.getvalue()
        assert not (tmp_path / "nope").exists()  # inspection creates nothing

    def test_results_out_requires_format(self, store_dir, tmp_path):
        out = io.StringIO()
        assert main(
            ["results", "--dir", store_dir, "--out", str(tmp_path / "x.json")],
            out=out,
        ) == 2

    def test_results_disabled_by_env(self, monkeypatch):
        out = io.StringIO()
        monkeypatch.setenv("REPRO_RUN_STORE", "0")
        assert main(["results"], out=out) == 0
        assert "disabled" in out.getvalue()


class TestStoreCommand:
    @pytest.fixture
    def store_dir(self, tmp_path):
        from repro.runtime import ExperimentRunner, ExperimentSpec
        from repro.sim.scenario import ScenarioConfig

        directory = str(tmp_path / "runs")
        spec = ExperimentSpec(
            kind="cache",
            scenario=ScenarioConfig.small(seed=1, num_slots=30),
            policy="periodic:period=2",
            num_seeds=2,
            label="tiny",
        )
        ExperimentRunner(workers=1).run_grid([spec], store=directory)
        return directory

    def test_store_stats(self, store_dir):
        out = io.StringIO()
        assert main(["store", "--dir", store_dir], out=out) == 0
        text = out.getvalue()
        assert f"Run store directory: {store_dir}" in text
        assert "Cells: 2 (cache=2)" in text
        assert "Labels: 1" in text

    def test_store_stats_json(self, store_dir):
        import json

        out = io.StringIO()
        assert main(["store", "--dir", store_dir, "--json"], out=out) == 0
        stats = json.loads(out.getvalue())
        assert stats["cells"] == 2
        assert stats["cells_by_kind"] == {"cache": 2}
        assert stats["blob_count"] == 2

    def test_store_vacuum(self, store_dir):
        import os

        orphan = os.path.join(store_dir, "blobs", "orphan.npz")
        open(orphan, "wb").write(b"junk")
        out = io.StringIO()
        assert main(["store", "--dir", store_dir, "--vacuum"], out=out) == 0
        assert "1 orphaned blob(s)" in out.getvalue()
        assert not os.path.exists(orphan)

    def test_store_clear(self, store_dir):
        out = io.StringIO()
        assert main(["store", "--dir", store_dir, "--clear"], out=out) == 0
        assert "Cleared 2 cell(s)" in out.getvalue()
        out = io.StringIO()
        assert main(["results", "--dir", store_dir], out=out) == 0
        assert "no rows match" in out.getvalue()

    def test_store_missing_directory(self, tmp_path):
        out = io.StringIO()
        assert main(["store", "--dir", str(tmp_path / "nope")], out=out) == 0
        assert "empty" in out.getvalue()

    def test_store_flags_mutually_exclusive(self, store_dir):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["store", "--dir", store_dir, "--clear", "--vacuum"]
            )


class TestServeCommand:
    def test_serve_command_parses_with_defaults(self):
        arguments = build_parser().parse_args(["serve"])
        assert arguments.command == "serve"
        assert arguments.scenario == "small"
        assert arguments.policy is None
        assert arguments.metrics == "summary"
        assert arguments.host == "127.0.0.1"
        assert arguments.port == 0

    def test_serve_rejects_unknown_scenario(self):
        out = io.StringIO()
        assert main(["serve", "--scenario", "nope"], out=out) == 2
        assert "--scenario" in out.getvalue()

    def test_serve_rejects_three_policies(self):
        out = io.StringIO()
        code = main(
            ["serve", "--policy", "mdp", "--policy", "lyapunov",
             "--policy", "myopic"],
            out=out,
        )
        assert code == 2
        assert "one --policy" in out.getvalue()

    def test_serve_rejects_bad_policy_combination(self):
        out = io.StringIO()
        code = main(["serve", "--policy", "lce", "--policy", "lcd"], out=out)
        assert code == 2
        assert "error:" in out.getvalue()

    def test_serve_subprocess_round_trip(self, tmp_path):
        import json as json_module
        import os
        import subprocess
        import sys

        from repro.serve import ServeClient
        from repro.sim.engine import simulate
        from repro.sim.scenario import ScenarioConfig
        from repro.sim.system import SystemState
        from repro.workloads.trace import export_trace

        base = ScenarioConfig.small(seed=21)
        num_slots = 15
        trace_path = str(tmp_path / "workload.jsonl")
        export_trace(SystemState(base).workload, num_slots, trace_path)
        config = base.with_overrides(workload=f"trace:path={trace_path}")
        scenario_path = str(tmp_path / "scenario.json")
        with open(scenario_path, "w", encoding="utf-8") as handle:
            json_module.dump(config.to_dict(), handle)

        repo_src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(repo_src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--scenario", scenario_path, "--policy", "lyapunov"],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            ready = process.stdout.readline()
            assert "serving" in ready
            port = int(ready.strip().rsplit(":", 1)[1])
            with ServeClient("127.0.0.1", port) as client:
                client.replay(trace_path)
                final = client.close()
            offline = simulate(
                config, "lyapunov", num_slots=num_slots, metrics="summary"
            )
            assert final["summary"] == offline.summary()
        finally:
            process.terminate()
            process.wait(timeout=10)
