"""Tests for repro.cli (the command-line interface)."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parses(self):
        arguments = build_parser().parse_args(["list"])
        assert arguments.command == "list"

    def test_run_command_defaults(self):
        arguments = build_parser().parse_args(["run", "E1"])
        assert arguments.experiments == ["E1"]
        assert arguments.slots == 300
        assert arguments.seed == 0

    def test_run_command_overrides(self):
        arguments = build_parser().parse_args(
            ["run", "E1", "E2", "--slots", "50", "--seed", "3"]
        )
        assert arguments.experiments == ["E1", "E2"]
        assert arguments.slots == 50
        assert arguments.seed == 3

    def test_figures_command_parses(self):
        arguments = build_parser().parse_args(["figures", "--slots", "40"])
        assert arguments.command == "figures"
        assert arguments.slots == 40

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_experiments(self):
        out = io.StringIO()
        exit_code = main(["list"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        for experiment_id in ("E1", "E2", "E7"):
            assert experiment_id in text

    def test_run_single_experiment(self):
        out = io.StringIO()
        exit_code = main(["run", "E3", "--slots", "80"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        assert "[E3]" in text
        assert "PASS" in text
        assert "reproduced" in text

    def test_run_multiple_experiments(self):
        out = io.StringIO()
        exit_code = main(["run", "e3", "E1", "--slots", "80"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        assert "[E1]" in text and "[E3]" in text

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(Exception):
            main(["run", "E42", "--slots", "10"], out=io.StringIO())

    def test_figures_prints_both_panels(self):
        out = io.StringIO()
        exit_code = main(["figures", "--slots", "60"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        assert "Fig. 1a" in text
        assert "Fig. 1b" in text
