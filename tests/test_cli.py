"""Tests for repro.cli (the command-line interface)."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parses(self):
        arguments = build_parser().parse_args(["list"])
        assert arguments.command == "list"

    def test_run_command_defaults(self):
        arguments = build_parser().parse_args(["run", "E1"])
        assert arguments.experiments == ["E1"]
        assert arguments.slots == 300
        assert arguments.seed == 0

    def test_run_command_overrides(self):
        arguments = build_parser().parse_args(
            ["run", "E1", "E2", "--slots", "50", "--seed", "3"]
        )
        assert arguments.experiments == ["E1", "E2"]
        assert arguments.slots == 50
        assert arguments.seed == 3

    def test_figures_command_parses(self):
        arguments = build_parser().parse_args(["figures", "--slots", "40"])
        assert arguments.command == "figures"
        assert arguments.slots == 40

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_experiments(self):
        out = io.StringIO()
        exit_code = main(["list"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        for experiment_id in ("E1", "E2", "E7"):
            assert experiment_id in text

    def test_run_single_experiment(self):
        out = io.StringIO()
        exit_code = main(["run", "E3", "--slots", "80"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        assert "[E3]" in text
        assert "PASS" in text
        assert "reproduced" in text

    def test_run_multiple_experiments(self):
        out = io.StringIO()
        exit_code = main(["run", "e3", "E1", "--slots", "80"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        assert "[E1]" in text and "[E3]" in text

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(Exception):
            main(["run", "E42", "--slots", "10"], out=io.StringIO())

    def test_figures_prints_both_panels(self):
        out = io.StringIO()
        exit_code = main(["figures", "--slots", "60"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        assert "Fig. 1a" in text
        assert "Fig. 1b" in text


class TestProfileFlag:
    def test_profile_flag_parses(self):
        arguments = build_parser().parse_args(["run", "E1", "--profile"])
        assert arguments.profile is True
        assert build_parser().parse_args(["run", "E1"]).profile is False

    def test_profile_appends_hotspot_report(self):
        out = io.StringIO()
        exit_code = main(["run", "E3", "--slots", "60", "--profile"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        # The run report still prints, followed by the cProfile table.
        assert "[E3]" in text
        assert "Top 20 hotspots (cumulative time)" in text
        assert "cumtime" in text


class TestCacheCommand:
    @pytest.fixture
    def isolated_cache_dir(self, tmp_path, monkeypatch):
        from repro.core import solve_cache

        directory = tmp_path / "solves"
        monkeypatch.setenv("REPRO_SOLVE_CACHE_DIR", str(directory))
        monkeypatch.delenv("REPRO_SOLVE_CACHE", raising=False)
        solve_cache.reset_solve_cache()
        yield directory
        solve_cache.reset_solve_cache()

    def test_cache_stats_prints_directory(self, isolated_cache_dir):
        out = io.StringIO()
        assert main(["cache"], out=out) == 0
        text = out.getvalue()
        assert str(isolated_cache_dir) in text
        assert "Persisted solves: 0" in text

    def test_cache_clear_removes_persisted_solves(self, isolated_cache_dir):
        from repro.core.caching_mdp import ContentUpdateMDP
        from repro.core.solve_cache import global_solve_cache, solve_key
        from repro.core.solvers import value_iteration

        result = value_iteration(
            ContentUpdateMDP(max_age=3.0, popularity=0.5, update_cost=1.0),
            discount=0.9,
        )
        global_solve_cache().put(solve_key("k", x=1.0), result)
        out = io.StringIO()
        assert main(["cache"], out=out) == 0
        assert "Persisted solves: 1" in out.getvalue()
        out = io.StringIO()
        assert main(["cache", "--clear"], out=out) == 0
        assert "Cleared 1" in out.getvalue()
        assert not any(isolated_cache_dir.glob("*.npz"))

    def test_cache_disabled_via_env(self, monkeypatch):
        from repro.core import solve_cache

        monkeypatch.setenv("REPRO_SOLVE_CACHE", "0")
        solve_cache.reset_solve_cache()
        out = io.StringIO()
        assert main(["cache"], out=out) == 0
        assert "disabled" in out.getvalue()
        solve_cache.reset_solve_cache()


class TestWorkloadFlag:
    def test_workload_flag_parses(self):
        arguments = build_parser().parse_args(
            ["run", "E2", "--workload", "drift:period=25,step=0.4"]
        )
        assert arguments.workload == "drift:period=25,step=0.4"
        assert build_parser().parse_args(["run", "E2"]).workload is None

    def test_run_with_workload_end_to_end(self):
        out = io.StringIO()
        exit_code = main(
            ["run", "E2", "--slots", "80", "--workload", "drift:period=20"],
            out=out,
        )
        assert exit_code == 0
        assert "[E2]" in out.getvalue()

    def test_run_with_unknown_workload_raises(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "E2", "--slots", "10", "--workload", "bogus"],
                 out=io.StringIO())

    def test_run_with_invalid_workload_param_raises(self):
        with pytest.raises(Exception):
            main(
                ["run", "E2", "--slots", "10", "--workload", "drift:period=0"],
                out=io.StringIO(),
            )

    def test_figures_with_workload(self):
        out = io.StringIO()
        exit_code = main(
            ["figures", "--slots", "50", "--workload",
             "flash-crowd:burst_prob=0.1"],
            out=out,
        )
        assert exit_code == 0
        assert "Fig. 1a" in out.getvalue()

    def test_e8_runs_the_workload_grid(self):
        out = io.StringIO()
        exit_code = main(["run", "E8", "--slots", "60"], out=out)
        assert exit_code == 0
        assert "[E8]" in out.getvalue()


class TestWorkloadsCommand:
    def test_lists_registered_models_and_parameters(self):
        out = io.StringIO()
        exit_code = main(["workloads"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        for name in ("stationary", "drift", "flash-crowd", "shot-noise", "trace"):
            assert name in text
        assert "burst_prob" in text
        assert "period" in text
