"""Tests for repro.cli (the command-line interface)."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parses(self):
        arguments = build_parser().parse_args(["list"])
        assert arguments.command == "list"

    def test_run_command_defaults(self):
        arguments = build_parser().parse_args(["run", "E1"])
        assert arguments.experiments == ["E1"]
        # None at parse time so --spec runs can reject the inapplicable
        # flags; the experiment path applies the 300/0/1 defaults itself.
        assert arguments.slots is None
        assert arguments.seed is None
        assert arguments.seeds is None

    def test_run_command_overrides(self):
        arguments = build_parser().parse_args(
            ["run", "E1", "E2", "--slots", "50", "--seed", "3"]
        )
        assert arguments.experiments == ["E1", "E2"]
        assert arguments.slots == 50
        assert arguments.seed == 3

    def test_figures_command_parses(self):
        arguments = build_parser().parse_args(["figures", "--slots", "40"])
        assert arguments.command == "figures"
        assert arguments.slots == 40

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_experiments(self):
        out = io.StringIO()
        exit_code = main(["list"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        for experiment_id in ("E1", "E2", "E7"):
            assert experiment_id in text

    def test_run_single_experiment(self):
        out = io.StringIO()
        exit_code = main(["run", "E3", "--slots", "80"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        assert "[E3]" in text
        assert "PASS" in text
        assert "reproduced" in text

    def test_run_multiple_experiments(self):
        out = io.StringIO()
        exit_code = main(["run", "e3", "E1", "--slots", "80"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        assert "[E1]" in text and "[E3]" in text

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(Exception):
            main(["run", "E42", "--slots", "10"], out=io.StringIO())

    def test_figures_prints_both_panels(self):
        out = io.StringIO()
        exit_code = main(["figures", "--slots", "60"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        assert "Fig. 1a" in text
        assert "Fig. 1b" in text


class TestProfileFlag:
    def test_profile_flag_parses(self):
        arguments = build_parser().parse_args(["run", "E1", "--profile"])
        assert arguments.profile is True
        assert build_parser().parse_args(["run", "E1"]).profile is False

    def test_profile_appends_hotspot_report(self):
        out = io.StringIO()
        exit_code = main(["run", "E3", "--slots", "60", "--profile"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        # The run report still prints, followed by the cProfile table.
        assert "[E3]" in text
        assert "Top 20 hotspots (cumulative time)" in text
        assert "cumtime" in text


class TestCacheCommand:
    @pytest.fixture
    def isolated_cache_dir(self, tmp_path, monkeypatch):
        from repro.core import solve_cache

        directory = tmp_path / "solves"
        monkeypatch.setenv("REPRO_SOLVE_CACHE_DIR", str(directory))
        monkeypatch.delenv("REPRO_SOLVE_CACHE", raising=False)
        solve_cache.reset_solve_cache()
        yield directory
        solve_cache.reset_solve_cache()

    def test_cache_stats_prints_directory(self, isolated_cache_dir):
        out = io.StringIO()
        assert main(["cache"], out=out) == 0
        text = out.getvalue()
        assert str(isolated_cache_dir) in text
        assert "Persisted solves: 0" in text

    def test_cache_clear_removes_persisted_solves(self, isolated_cache_dir):
        from repro.core.caching_mdp import ContentUpdateMDP
        from repro.core.solve_cache import global_solve_cache, solve_key
        from repro.core.solvers import value_iteration

        result = value_iteration(
            ContentUpdateMDP(max_age=3.0, popularity=0.5, update_cost=1.0),
            discount=0.9,
        )
        global_solve_cache().put(solve_key("k", x=1.0), result)
        out = io.StringIO()
        assert main(["cache"], out=out) == 0
        assert "Persisted solves: 1" in out.getvalue()
        out = io.StringIO()
        assert main(["cache", "--clear"], out=out) == 0
        assert "Cleared 1" in out.getvalue()
        assert not any(isolated_cache_dir.glob("*.npz"))

    def test_cache_disabled_via_env(self, monkeypatch):
        from repro.core import solve_cache

        monkeypatch.setenv("REPRO_SOLVE_CACHE", "0")
        solve_cache.reset_solve_cache()
        out = io.StringIO()
        assert main(["cache"], out=out) == 0
        assert "disabled" in out.getvalue()
        solve_cache.reset_solve_cache()


class TestWorkloadFlag:
    def test_workload_flag_parses(self):
        arguments = build_parser().parse_args(
            ["run", "E2", "--workload", "drift:period=25,step=0.4"]
        )
        assert arguments.workload == "drift:period=25,step=0.4"
        assert build_parser().parse_args(["run", "E2"]).workload is None

    def test_run_with_workload_end_to_end(self):
        out = io.StringIO()
        exit_code = main(
            ["run", "E2", "--slots", "80", "--workload", "drift:period=20"],
            out=out,
        )
        assert exit_code == 0
        assert "[E2]" in out.getvalue()

    def test_run_with_unknown_workload_raises(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "E2", "--slots", "10", "--workload", "bogus"],
                 out=io.StringIO())

    def test_run_with_invalid_workload_param_raises(self):
        with pytest.raises(Exception):
            main(
                ["run", "E2", "--slots", "10", "--workload", "drift:period=0"],
                out=io.StringIO(),
            )

    def test_figures_with_workload(self):
        out = io.StringIO()
        exit_code = main(
            ["figures", "--slots", "50", "--workload",
             "flash-crowd:burst_prob=0.1"],
            out=out,
        )
        assert exit_code == 0
        assert "Fig. 1a" in out.getvalue()

    def test_e8_runs_the_workload_grid(self):
        out = io.StringIO()
        exit_code = main(["run", "E8", "--slots", "60"], out=out)
        assert exit_code == 0
        assert "[E8]" in out.getvalue()


class TestWorkloadsCommand:
    def test_lists_registered_models_and_parameters(self):
        out = io.StringIO()
        exit_code = main(["workloads"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        for name in ("stationary", "drift", "flash-crowd", "shot-noise", "trace"):
            assert name in text
        assert "burst_prob" in text
        assert "period" in text


class TestPoliciesCommand:
    def test_lists_both_roles_and_parameters(self):
        out = io.StringIO()
        exit_code = main(["policies"], out=out)
        assert exit_code == 0
        text = out.getvalue()
        assert "Caching (stage 1):" in text
        assert "Service (stage 2):" in text
        for name in ("mdp", "lyapunov", "threshold", "cost-greedy"):
            assert name in text
        assert "tradeoff_v" in text
        assert "exact_state_limit" in text


class TestSpecRuns:
    @pytest.fixture
    def spec_path(self, tmp_path):
        from repro.runtime import ExperimentSpec, save_specs
        from repro.sim.scenario import ScenarioConfig

        path = str(tmp_path / "experiments.json")
        save_specs(
            [
                ExperimentSpec(
                    kind="cache",
                    scenario=ScenarioConfig.small(seed=1, num_slots=30),
                    policy="mdp",
                    num_seeds=2,
                    label="tiny",
                )
            ],
            path,
        )
        return path

    def test_spec_flag_parses(self, spec_path):
        arguments = build_parser().parse_args(["run", "--spec", spec_path])
        assert arguments.spec == spec_path
        assert arguments.experiments == []

    def test_run_spec_file_end_to_end(self, spec_path):
        out = io.StringIO()
        exit_code = main(["run", "--spec", spec_path], out=out)
        assert exit_code == 0
        text = out.getvalue()
        assert "Ran 2 run(s)" in text
        assert "tiny" in text

    def test_run_spec_writes_out_json(self, spec_path, tmp_path):
        import json

        out_path = str(tmp_path / "results.json")
        out = io.StringIO()
        exit_code = main(
            ["run", "--spec", spec_path, "--out", out_path], out=out
        )
        assert exit_code == 0
        document = json.load(open(out_path))
        assert len(document["rows"]) == 2
        assert document["aggregate"][0]["label"] == "tiny"

    def test_policy_override_changes_the_policy(self, spec_path):
        out = io.StringIO()
        exit_code = main(
            ["run", "--spec", spec_path, "--policy", "threshold:threshold=0.6"],
            out=out,
        )
        assert exit_code == 0
        assert "threshold" in out.getvalue()

    def test_workload_override_applies_to_spec_scenarios(self, spec_path):
        out = io.StringIO()
        exit_code = main(
            ["run", "--spec", spec_path, "--workload", "drift:period=10"],
            out=out,
        )
        assert exit_code == 0

    def test_wrong_role_policy_override_fails(self, spec_path):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="service policy"):
            main(["run", "--spec", spec_path, "--policy", "lyapunov"],
                 out=io.StringIO())

    def test_explicit_seeds_one_overrides_spec_counts(self, spec_path):
        out = io.StringIO()
        exit_code = main(["run", "--spec", spec_path, "--seeds", "1"], out=out)
        assert exit_code == 0
        assert "Ran 1 run(s)" in out.getvalue()

    def test_slots_rejected_with_spec(self, spec_path):
        out = io.StringIO()
        assert main(["run", "--spec", spec_path, "--slots", "50"], out=out) == 2
        assert "--slots" in out.getvalue()

    def test_mixed_kind_specs_render_one_table_per_kind(self):
        import os

        example = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "examples",
            "spec.json",
        )
        out = io.StringIO()
        assert main(["run", "--spec", example], out=out) == 0
        text = out.getvalue()
        assert "[cache]" in text and "[joint]" in text
        # The joint row renders its own columns instead of blank cells.
        assert "service_time_average_cost" in text

    def test_run_without_ids_or_spec_errors(self):
        out = io.StringIO()
        assert main(["run"], out=out) == 2
        assert "error" in out.getvalue()

    def test_ids_and_spec_together_error(self, spec_path):
        out = io.StringIO()
        assert main(["run", "E1", "--spec", spec_path], out=out) == 2
        assert "error" in out.getvalue()

    def test_policy_without_spec_errors(self):
        out = io.StringIO()
        assert main(["run", "E1", "--policy", "mdp"], out=out) == 2
        assert "--spec" in out.getvalue()

    def test_example_spec_file_runs(self):
        import os

        example = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "examples",
            "spec.json",
        )
        out = io.StringIO()
        exit_code = main(["run", "--spec", example], out=out)
        assert exit_code == 0
        assert "tiny-joint" in out.getvalue()
