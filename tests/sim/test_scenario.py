"""Tests for repro.sim.scenario (scenario configuration)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.net.channel import ConstantCostModel, FadingCostModel
from repro.net.requests import BernoulliArrivals, PoissonArrivals
from repro.sim.scenario import ScenarioConfig


class TestScenarioValidation:
    def test_defaults_valid(self):
        config = ScenarioConfig()
        assert config.num_regions == config.num_rsus * config.contents_per_rsu

    def test_invalid_age_range_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(min_max_age=10.0, max_max_age=5.0)

    def test_invalid_cost_model_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(cost_model_kind="quantum")

    def test_invalid_arrival_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(arrival_kind="burst")

    def test_bernoulli_rate_above_one_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(arrival_kind="bernoulli", arrival_rate=1.5)

    def test_poisson_rate_above_one_allowed(self):
        config = ScenarioConfig(arrival_kind="poisson", arrival_rate=2.5)
        assert isinstance(config.build_arrivals(), PoissonArrivals)

    def test_invalid_discount_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioConfig(discount=1.0)

    def test_invalid_num_rsus_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioConfig(num_rsus=0)

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioConfig(deadline_slots=0)


class TestFactories:
    def test_fig1a_matches_paper_dimensions(self):
        config = ScenarioConfig.fig1a()
        assert config.num_rsus == 4
        assert config.contents_per_rsu == 5
        assert config.num_contents == 20
        assert config.num_slots == 1000

    def test_fig1b_matches_paper_dimensions(self):
        config = ScenarioConfig.fig1b()
        assert config.num_rsus == 5
        assert config.num_slots == 1000

    def test_factory_overrides(self):
        config = ScenarioConfig.fig1a(num_slots=50, aoi_weight=2.0)
        assert config.num_slots == 50
        assert config.aoi_weight == 2.0

    def test_small_factory_is_small(self):
        config = ScenarioConfig.small()
        assert config.num_contents <= 8
        assert config.num_slots <= 100

    def test_with_overrides_returns_copy(self):
        base = ScenarioConfig.small(seed=1)
        changed = base.with_overrides(num_slots=99)
        assert changed.num_slots == 99
        assert base.num_slots != 99


class TestBuilders:
    def test_build_topology_dimensions(self):
        config = ScenarioConfig.fig1a()
        topology = config.build_topology()
        assert topology.num_rsus == 4
        assert topology.num_regions == 20

    def test_build_catalog_size_and_age_range(self):
        config = ScenarioConfig.fig1a(seed=2)
        catalog = config.build_catalog()
        assert catalog.num_contents == 20
        assert np.all(catalog.max_ages >= config.min_max_age)
        assert np.all(catalog.max_ages <= config.max_max_age)

    def test_build_catalog_deterministic(self):
        config = ScenarioConfig.fig1a(seed=5)
        np.testing.assert_array_equal(
            config.build_catalog().max_ages, config.build_catalog().max_ages
        )

    def test_cost_model_kinds(self):
        assert isinstance(
            ScenarioConfig(cost_model_kind="constant").build_update_cost_model(),
            ConstantCostModel,
        )
        assert isinstance(
            ScenarioConfig(cost_model_kind="fading").build_update_cost_model(),
            FadingCostModel,
        )

    def test_build_arrivals_kind(self):
        assert isinstance(ScenarioConfig().build_arrivals(), BernoulliArrivals)

    def test_build_mdp_config_propagates_weight(self):
        config = ScenarioConfig(aoi_weight=3.5, discount=0.8)
        mdp_config = config.build_mdp_config()
        assert mdp_config.weight == 3.5
        assert mdp_config.discount == 0.8

    def test_spawn_rngs_independent(self):
        config = ScenarioConfig(seed=4)
        streams = config.spawn_rngs(3)
        assert len(streams) == 3
        assert not np.allclose(streams[0].random(5), streams[1].random(5))

    def test_road_length(self):
        config = ScenarioConfig(num_rsus=2, contents_per_rsu=3, region_length=50.0)
        assert config.road_length() == pytest.approx(300.0)


class TestWorkloadField:
    def test_default_workload_is_stationary_spec(self):
        from repro.workloads import WorkloadSpec

        config = ScenarioConfig()
        assert isinstance(config.workload, WorkloadSpec)
        assert config.workload == WorkloadSpec()

    def test_string_workload_normalised_to_spec(self):
        from repro.workloads import WorkloadSpec

        config = ScenarioConfig(workload="drift:period=10")
        assert config.workload == WorkloadSpec.parse("drift:period=10")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(workload="bogus")

    def test_invalid_workload_param_rejected_through_with_overrides(self):
        config = ScenarioConfig()
        with pytest.raises((ConfigurationError, ValidationError)):
            config.with_overrides(workload="drift:period=0")

    def test_build_workload_returns_registered_model(self):
        from repro.workloads import FlashCrowdWorkload

        config = ScenarioConfig(workload="flash-crowd:burst_prob=0.1")
        topology = config.build_topology()
        catalog = config.build_catalog()
        model = config.build_workload(topology, catalog, rng=0)
        assert isinstance(model, FlashCrowdWorkload)

    def test_build_workload_default_matches_request_generator(self):
        from repro.net.requests import RequestGenerator

        config = ScenarioConfig.small(seed=2)
        topology = config.build_topology()
        catalog = config.build_catalog()
        model = config.build_workload(topology, catalog, rng=9)
        legacy = RequestGenerator(
            topology, catalog, arrivals=config.build_arrivals(), rng=9
        )
        for t in range(20):
            expected = legacy.generate_slot_contents(t)
            actual = model.generate_slot_contents(t)
            assert len(expected) == len(actual)
            for (r1, c1), (r2, c2) in zip(expected, actual):
                assert r1 == r2
                assert np.array_equal(c1, c2)


class TestValidationAudit:
    """Knobs reachable through with_overrides/replace must all validate."""

    def test_negative_zipf_rejected_through_with_overrides(self):
        with pytest.raises(ValidationError):
            ScenarioConfig().with_overrides(zipf_exponent=-0.5)

    def test_negative_arrival_rate_rejected_through_with_overrides(self):
        with pytest.raises(ValidationError):
            ScenarioConfig().with_overrides(arrival_rate=-0.1)

    def test_zero_rate_poisson_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(arrival_kind="poisson", arrival_rate=0.0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig().with_overrides(
                arrival_kind="poisson", arrival_rate=0.0
            )

    def test_zero_rate_bernoulli_still_allowed(self):
        config = ScenarioConfig(arrival_kind="bernoulli", arrival_rate=0.0)
        assert isinstance(config.build_arrivals(), BernoulliArrivals)

    def test_negative_cost_sigma_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioConfig().with_overrides(cost_sigma=-0.25)

    def test_invalid_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(seed=-1)
        with pytest.raises(ConfigurationError):
            ScenarioConfig().with_overrides(seed="nope")
        assert ScenarioConfig(seed=None).seed is None

    def test_workload_knobs_validate_through_with_overrides(self):
        config = ScenarioConfig()
        with pytest.raises((ConfigurationError, ValidationError)):
            config.with_overrides(workload="shot-noise:boost=0.1")
        with pytest.raises((ConfigurationError, ValidationError)):
            config.with_overrides(workload="flash-crowd:burst_prob=7")
