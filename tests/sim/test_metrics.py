"""Tests for repro.sim.metrics (metric collectors)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reward import RewardBreakdown
from repro.exceptions import ValidationError
from repro.sim.metrics import CacheMetrics, RewardTrace, ServiceMetrics


class TestRewardTrace:
    def test_cumulative_reward(self):
        trace = RewardTrace()
        trace.record(RewardBreakdown(aoi_utility=2.0, cost=1.0, weight=1.0))
        trace.record(RewardBreakdown(aoi_utility=4.0, cost=1.0, weight=1.0))
        np.testing.assert_allclose(trace.cumulative_reward, [1.0, 4.0])
        assert trace.total_reward == pytest.approx(4.0)
        assert trace.total_cost == pytest.approx(2.0)
        assert trace.total_aoi_utility == pytest.approx(6.0)
        assert trace.mean_reward == pytest.approx(2.0)
        assert len(trace) == 2

    def test_empty_trace(self):
        trace = RewardTrace()
        assert np.isnan(trace.mean_reward)
        assert trace.total_reward == 0.0


class TestCacheMetrics:
    @pytest.fixture
    def metrics(self):
        max_ages = np.array([[4.0, 6.0], [8.0, 10.0]])
        return CacheMetrics(2, 2, max_ages)

    def test_record_and_histories(self, metrics):
        ages = np.array([[1.0, 2.0], [3.0, 4.0]])
        actions = np.array([[1, 0], [0, 0]])
        metrics.record_slot(0, ages, actions, RewardBreakdown(1.0, 0.5, 1.0))
        metrics.record_slot(1, ages + 1, actions, RewardBreakdown(1.0, 0.5, 1.0))
        assert metrics.num_slots_recorded == 2
        assert metrics.age_matrix_history().shape == (2, 2, 2)
        assert metrics.total_updates == 2
        assert metrics.mean_age == pytest.approx(np.mean([ages, ages + 1]))

    def test_age_trace_per_content(self, metrics):
        for t in range(3):
            ages = np.full((2, 2), float(t + 1))
            metrics.record_slot(t, ages, np.zeros((2, 2), dtype=int), RewardBreakdown(1, 0, 1))
        trace = metrics.age_trace(0, 1)
        np.testing.assert_allclose(trace.ages, [1.0, 2.0, 3.0])
        assert trace.max_age == 6.0

    def test_violation_fraction(self, metrics):
        ages = np.array([[5.0, 5.0], [5.0, 5.0]])  # only (0,0) violates (A_max 4)
        metrics.record_slot(0, ages, np.zeros((2, 2), dtype=int), RewardBreakdown(1, 0, 1))
        assert metrics.violation_fraction == pytest.approx(0.25)

    def test_bad_shape_rejected(self, metrics):
        with pytest.raises(ValidationError):
            metrics.record_slot(
                0, np.ones((1, 2)), np.zeros((2, 2), dtype=int), RewardBreakdown(1, 0, 1)
            )

    def test_unknown_trace_rejected(self, metrics):
        with pytest.raises(ValidationError):
            metrics.age_trace(5, 0)

    def test_max_ages_shape_checked(self):
        with pytest.raises(ValidationError):
            CacheMetrics(2, 2, np.ones((1, 2)))

    def test_empty_summary(self, metrics):
        summary = metrics.summary()
        assert summary["num_slots"] == 0.0
        assert np.isnan(summary["mean_age"])

    def test_summary_keys(self, metrics):
        ages = np.ones((2, 2))
        metrics.record_slot(0, ages, np.zeros((2, 2), dtype=int), RewardBreakdown(1, 0, 1))
        summary = metrics.summary()
        assert {"total_reward", "mean_age", "violation_fraction"} <= set(summary)


class TestServiceMetrics:
    @pytest.fixture
    def metrics(self):
        return ServiceMetrics(2)

    def record(self, metrics, backlogs, costs, decisions=None):
        decisions = decisions if decisions is not None else [True, False]
        metrics.record_slot(
            backlogs=backlogs,
            latencies=[b * 2 for b in backlogs],
            costs=costs,
            decisions=decisions,
            served_counts=[int(d) for d in decisions],
        )

    def test_histories_aggregate_over_rsus(self, metrics):
        self.record(metrics, [1.0, 2.0], [0.5, 0.0])
        self.record(metrics, [2.0, 2.0], [0.5, 0.5])
        np.testing.assert_allclose(metrics.backlog_history(), [3.0, 4.0])
        np.testing.assert_allclose(metrics.backlog_history(rsu=0), [1.0, 2.0])
        np.testing.assert_allclose(metrics.cost_history(), [0.5, 1.0])
        assert metrics.total_cost == pytest.approx(1.5)
        assert metrics.total_served == 2

    def test_time_averages(self, metrics):
        self.record(metrics, [2.0, 2.0], [1.0, 1.0])
        self.record(metrics, [4.0, 4.0], [0.0, 0.0])
        assert metrics.time_average_backlog == pytest.approx(6.0)
        assert metrics.time_average_cost == pytest.approx(1.0)
        assert metrics.peak_backlog == pytest.approx(8.0)

    def test_service_rate(self, metrics):
        self.record(metrics, [1.0, 1.0], [0.0, 0.0], decisions=[True, True])
        self.record(metrics, [1.0, 1.0], [0.0, 0.0], decisions=[False, False])
        assert metrics.service_rate == pytest.approx(0.5)

    def test_stability_detects_linear_growth(self, metrics):
        for t in range(40):
            self.record(metrics, [float(t), float(t)], [0.0, 0.0])
        assert not metrics.is_stable()

    def test_stability_accepts_bounded(self, metrics):
        for t in range(40):
            self.record(metrics, [1.0, 1.0], [0.0, 0.0])
        assert metrics.is_stable()

    def test_bad_shape_rejected(self, metrics):
        with pytest.raises(ValidationError):
            metrics.record_slot([1.0], [1.0, 1.0], [0.0, 0.0], [True, True], [1, 1])

    def test_rsu_index_checked(self, metrics):
        self.record(metrics, [1.0, 1.0], [0.0, 0.0])
        with pytest.raises(ValidationError):
            metrics.backlog_history(rsu=5)

    def test_empty_metrics(self, metrics):
        assert np.isnan(metrics.time_average_cost)
        assert metrics.total_served == 0
        assert metrics.is_stable()

    def test_invalid_num_rsus_rejected(self):
        with pytest.raises(ValidationError):
            ServiceMetrics(0)
