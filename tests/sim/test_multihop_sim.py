"""Tests for the multihop simulator (graph-routed requests)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.net.model import NetworkModel
from repro.policies.onpath import EdgeCaching, LeaveCopyEverywhere
from repro.policies.registry import PolicySpec
from repro.sim.multihop_sim import MultihopSimulator
from repro.sim.scenario import ScenarioConfig
from repro.sim.system import SystemState

pytest.importorskip("networkx")


def single_rsu_replay(config: ScenarioConfig, num_slots: int):
    """Independent scalar replay of the single-RSU caching model.

    Star topology + the ``edge`` strategy degenerates to the legacy
    per-RSU cache: a request hits iff the receiver's copy is fresh enough,
    a miss fetches from the origin (two hops: request up, content down)
    and refreshes the local copy to age 1, and every copy ages one slot
    per slot.  The replay re-draws the identical RNG streams through
    ``SystemState`` and never touches the network core.
    """
    state = SystemState(config)
    model = NetworkModel(
        state.topology,
        kind="star",
        cost_model=state.service_cost_model,
        cache_capacity=config.cache_capacity,
        hop_delay=config.hop_delay,
    )
    origin = model.origin
    ages = [
        {int(c): cache.age_of(int(c)) for c in cache.content_ids}
        for cache in state.caches
    ]
    max_ages = state.catalog.max_ages
    hits = served = hops = 0
    latency = 0.0
    for t in range(num_slots):
        for rsu, contents in state.workload.generate_slot_contents(t):
            for content in contents:
                content = int(content)
                served += 1
                age = ages[rsu].get(content)
                if age is not None and age <= float(max_ages[content]):
                    hits += 1
                else:
                    ages[rsu][content] = 1.0
                    hops += 2
                    latency += 2.0 * model.edge_delay(rsu, origin)
        for per_rsu in ages:
            for content in per_rsu:
                per_rsu[content] += 1.0
    return {
        "hits": hits,
        "served": served,
        "hops": hops,
        "latency": latency,
        "hit_ratio": hits / served if served else float("nan"),
    }


class TestStarEdgeEquivalence:
    """multihop + star + edge bit-matches the single-RSU cache model."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_rsus=4, contents_per_rsu=3, num_slots=80, seed=11),
            dict(num_rsus=3, contents_per_rsu=5, num_slots=120, seed=42),
            dict(num_rsus=5, contents_per_rsu=2, num_slots=60, seed=0),
        ],
    )
    def test_matches_scalar_replay(self, kwargs):
        config = ScenarioConfig(topology_kind="star", **kwargs)
        result = MultihopSimulator(config, EdgeCaching()).run()
        expected = single_rsu_replay(config, kwargs["num_slots"])
        assert result.metrics.total_hits == expected["hits"]
        assert result.metrics.total_served == expected["served"]
        assert result.metrics.total_hops == expected["hops"]
        assert result.metrics.total_latency == expected["latency"]
        assert result.hit_ratio == expected["hit_ratio"]

    def test_golden_fingerprints(self):
        """Pinned outcomes: any drift in RNG streams, routing, or cache
        aging shows up as an exact mismatch here."""
        config = ScenarioConfig(
            num_rsus=4, contents_per_rsu=3, num_slots=80, seed=11,
            topology_kind="star",
        )
        result = MultihopSimulator(config, EdgeCaching()).run()
        assert result.hit_ratio == 0.5740740740740741
        assert result.metrics.total_latency == 138.0
        assert result.metrics.total_hops == 138

        config = ScenarioConfig(
            num_rsus=3, contents_per_rsu=5, num_slots=120, seed=42,
            topology_kind="star",
        )
        result = MultihopSimulator(config, EdgeCaching()).run()
        assert result.hit_ratio == 0.42786069651741293
        assert result.metrics.total_latency == 230.0
        assert result.metrics.total_hops == 230


class TestSessionPaths:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        kind=st.sampled_from(("star", "line", "ring")),
        policy=st.sampled_from(("lce", "lcd", "probcache", "cl4m", "edge")),
    )
    def test_every_session_walks_a_contiguous_path(self, seed, kind, policy):
        config = ScenarioConfig(
            num_rsus=4, contents_per_rsu=3, num_slots=25, seed=seed,
            topology_kind=kind,
        )
        simulator = MultihopSimulator(
            config, PolicySpec.coerce(policy).build(config)
        )
        result = simulator.run()
        state = SystemState(config)
        model = NetworkModel(
            state.topology, kind=kind, cost_model=state.service_cost_model
        )
        graph = model.graph
        sessions = result.metrics.sessions()
        assert sessions, "expected at least one routed request"
        for session in sessions:
            path = session.path
            assert path[0] == session.receiver
            assert path[-1] == session.serving_node
            for u, v in zip(path, path[1:]):
                assert graph.has_edge(u, v)
            # Request walk up + delivery walk back down the same path.
            assert session.hops == 2 * (len(path) - 1)


class TestRolesAndBatch:
    def test_caching_role_needs_capacity(self):
        config = ScenarioConfig(
            num_rsus=3, contents_per_rsu=4, num_slots=10, seed=0,
            topology_kind="star", cache_capacity=2,
        )
        policy = PolicySpec.coerce("never").build(config)
        with pytest.raises(ConfigurationError):
            MultihopSimulator(config, policy).run()

    def test_caching_role_static_placement(self):
        """Requests never insert: the cache inventory stays the policy's."""
        config = ScenarioConfig(
            num_rsus=3, contents_per_rsu=3, num_slots=15, seed=4,
            topology_kind="line",
        )
        policy = PolicySpec.coerce("never").build(config)
        result = MultihopSimulator(config, policy).run()
        metrics = result.metrics
        assert metrics.total_updates == 0
        assert metrics.total_served == metrics.total_requests

    def test_service_role_waits_and_serves(self):
        config = ScenarioConfig(
            num_rsus=3, contents_per_rsu=3, num_slots=30, seed=9,
            topology_kind="star",
        )
        policy = PolicySpec.coerce("always-serve").build(config)
        result = MultihopSimulator(config, policy).run()
        metrics = result.metrics
        # always-serve triggers on positive waiting, so arrivals are
        # served no earlier than the slot after they are issued (the
        # stage-2 simulator's exact semantics) — the final slot's
        # arrivals stay queued at the horizon.
        assert 0 < metrics.total_served <= metrics.total_requests
        assert metrics.total_waiting > 0.0
        assert metrics.total_hits <= metrics.total_served

    def test_service_role_never_serve_starves(self):
        config = ScenarioConfig(
            num_rsus=3, contents_per_rsu=3, num_slots=10, seed=9,
            topology_kind="star",
        )
        policy = PolicySpec.coerce("never-serve").build(config)
        result = MultihopSimulator(config, policy).run()
        assert result.metrics.total_served == 0
        assert result.metrics.total_requests > 0

    def test_run_batch_matches_per_run(self):
        config = ScenarioConfig(
            num_rsus=3, contents_per_rsu=3, num_slots=20, seed=1,
            topology_kind="ring",
        )
        seeds = [5, 6, 7]
        batch = MultihopSimulator(config, LeaveCopyEverywhere()).run_batch(seeds)
        for seed, batched in zip(seeds, batch):
            single = MultihopSimulator(
                config.with_overrides(seed=seed), LeaveCopyEverywhere()
            ).run()
            assert batched.summary() == single.summary()
            assert np.array_equal(
                batched.latency_history, single.latency_history
            )

    def test_summary_metrics_mode_matches_full(self):
        config = ScenarioConfig(
            num_rsus=3, contents_per_rsu=3, num_slots=20, seed=2,
            topology_kind="line",
        )
        full = MultihopSimulator(config, LeaveCopyEverywhere()).run()
        summary = MultihopSimulator(
            config, LeaveCopyEverywhere(), metrics="summary"
        ).run()
        assert full.summary() == summary.summary()
