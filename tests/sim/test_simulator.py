"""Tests for repro.sim.simulator (cache, service, and joint simulators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.caching import AlwaysUpdatePolicy, NeverUpdatePolicy
from repro.baselines.service import AlwaysServePolicy, NeverServePolicy
from repro.core.caching_mdp import MDPCachingPolicy
from repro.core.lyapunov import LyapunovServiceController
from repro.exceptions import ValidationError
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import CacheSimulator, JointSimulator, ServiceSimulator


class TestCacheSimulator:
    def test_run_length_matches_horizon(self, small_config, mdp_policy):
        result = CacheSimulator(small_config, mdp_policy).run()
        assert result.metrics.num_slots_recorded == small_config.num_slots
        assert result.cumulative_reward.shape == (small_config.num_slots,)

    def test_horizon_override(self, small_config, mdp_policy):
        result = CacheSimulator(small_config, mdp_policy).run(num_slots=7)
        assert result.metrics.num_slots_recorded == 7

    def test_invalid_horizon_rejected(self, small_config, mdp_policy):
        with pytest.raises(ValidationError):
            CacheSimulator(small_config, mdp_policy).run(num_slots=0)

    def test_deterministic_given_seed(self, small_config):
        def run():
            policy = MDPCachingPolicy(small_config.build_mdp_config())
            return CacheSimulator(small_config, policy).run().total_reward

        assert run() == pytest.approx(run())

    def test_different_seeds_differ(self):
        a = ScenarioConfig.small(seed=1)
        b = ScenarioConfig.small(seed=2)
        result_a = CacheSimulator(a, MDPCachingPolicy(a.build_mdp_config())).run()
        result_b = CacheSimulator(b, MDPCachingPolicy(b.build_mdp_config())).run()
        assert result_a.total_reward != pytest.approx(result_b.total_reward)

    def test_never_update_has_zero_cost_and_growing_age(self, small_config):
        result = CacheSimulator(small_config, NeverUpdatePolicy()).run()
        summary = result.metrics.summary()
        assert summary["total_cost"] == 0.0
        assert summary["total_updates"] == 0.0
        # With no updates ages only grow (until the saturation ceiling).
        history = result.metrics.age_matrix_history()
        assert np.all(np.diff(history, axis=0) >= 0)

    def test_always_update_pays_cost_every_slot(self, small_config):
        result = CacheSimulator(small_config, AlwaysUpdatePolicy()).run()
        summary = result.metrics.summary()
        assert summary["total_updates"] == small_config.num_slots * small_config.num_rsus

    def test_mdp_beats_never_update_on_reward(self, small_config):
        mdp = CacheSimulator(
            small_config, MDPCachingPolicy(small_config.build_mdp_config())
        ).run()
        never = CacheSimulator(small_config, NeverUpdatePolicy()).run()
        assert mdp.total_reward > never.total_reward

    def test_mdp_keeps_ages_below_limits_most_of_the_time(self, fig1a_config):
        policy = MDPCachingPolicy(fig1a_config.build_mdp_config())
        result = CacheSimulator(fig1a_config, policy).run()
        assert result.metrics.violation_fraction < 0.10

    def test_summary_contains_policy_name(self, small_config, mdp_policy):
        summary = CacheSimulator(small_config, mdp_policy).run().summary()
        assert summary["policy"] == "mdp"

    def test_actions_recorded_respect_constraint(self, small_config, mdp_policy):
        result = CacheSimulator(small_config, mdp_policy).run()
        actions = result.metrics.action_matrix_history()
        assert np.all(actions.sum(axis=2) <= 1)


class TestServiceSimulator:
    def test_run_length(self, small_config):
        result = ServiceSimulator(small_config, AlwaysServePolicy()).run()
        assert result.metrics.num_slots_recorded == small_config.num_slots

    def test_always_serve_keeps_latency_low(self, fig1b_config):
        result = ServiceSimulator(fig1b_config, AlwaysServePolicy()).run()
        # Requests wait at most one slot under always-serve.
        assert result.metrics.time_average_backlog <= fig1b_config.num_rsus * 2

    def test_never_serve_latency_grows(self, fig1b_config):
        result = ServiceSimulator(fig1b_config, NeverServePolicy()).run()
        latency = result.latency_history
        assert latency[-1] > latency[len(latency) // 2] > 0
        assert not result.metrics.is_stable()

    def test_lyapunov_is_stable_and_cheaper_than_always_serve(self, fig1b_config):
        lyapunov = ServiceSimulator(
            fig1b_config, LyapunovServiceController(fig1b_config.tradeoff_v)
        ).run()
        always = ServiceSimulator(fig1b_config, AlwaysServePolicy()).run()
        assert lyapunov.metrics.is_stable()
        assert lyapunov.time_average_cost <= always.time_average_cost + 1e-9

    def test_deterministic_given_seed(self, fig1b_config):
        def run():
            return ServiceSimulator(
                fig1b_config, LyapunovServiceController(10.0)
            ).run().summary()

        first, second = run(), run()
        assert first["total_cost"] == pytest.approx(second["total_cost"])
        assert first["time_average_backlog"] == pytest.approx(
            second["time_average_backlog"]
        )

    def test_service_batch_limits_throughput(self, small_config):
        config = small_config.with_overrides(arrival_rate=1.0)
        unlimited = ServiceSimulator(config, AlwaysServePolicy()).run()
        limited = ServiceSimulator(config, AlwaysServePolicy(), service_batch=1).run()
        assert limited.metrics.total_served <= unlimited.metrics.total_served

    def test_invalid_service_batch_rejected(self, small_config):
        with pytest.raises(ValidationError):
            ServiceSimulator(small_config, AlwaysServePolicy(), service_batch=0)


class TestJointSimulator:
    def test_both_stages_recorded(self, small_config):
        result = JointSimulator(
            small_config,
            MDPCachingPolicy(small_config.build_mdp_config()),
            LyapunovServiceController(small_config.tradeoff_v),
        ).run()
        assert result.cache_metrics.num_slots_recorded == small_config.num_slots
        assert result.service_metrics.num_slots_recorded == small_config.num_slots

    def test_summary_merges_stages(self, small_config):
        result = JointSimulator(
            small_config,
            MDPCachingPolicy(small_config.build_mdp_config()),
            LyapunovServiceController(small_config.tradeoff_v),
        ).run()
        summary = result.summary()
        assert "cache_total_reward" in summary
        assert "service_total_cost" in summary
        assert summary["caching_policy"] == "mdp"
        assert summary["service_policy"] == "lyapunov"

    def test_active_cache_management_unblocks_service(self, small_config):
        """With no cache updates the AoI guard eventually blocks all service."""
        config = small_config.with_overrides(num_slots=80, arrival_rate=1.0)
        with_mdp = JointSimulator(
            config,
            MDPCachingPolicy(config.build_mdp_config()),
            LyapunovServiceController(1.0),
        ).run()
        without_updates = JointSimulator(
            config,
            NeverUpdatePolicy(),
            LyapunovServiceController(1.0),
        ).run()
        assert (
            with_mdp.service_metrics.total_served
            > without_updates.service_metrics.total_served
        )

    def test_deterministic_given_seed(self, small_config):
        def run():
            return JointSimulator(
                small_config,
                MDPCachingPolicy(small_config.build_mdp_config()),
                LyapunovServiceController(10.0),
            ).run().summary()

        a, b = run(), run()
        assert a["cache_total_reward"] == pytest.approx(b["cache_total_reward"])
        assert a["service_total_cost"] == pytest.approx(b["service_total_cost"])
