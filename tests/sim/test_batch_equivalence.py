"""Golden-trajectory equivalence: seed-batched runs vs per-seed runs.

``run_batch`` is only allowed to be *fast*: for every seed in the batch it
must reproduce the per-run vectorised loop slot for slot — the same ages,
actions, reward breakdowns, backlogs, latencies, costs, and decisions,
compared with exact equality (no tolerances).  These tests pin that contract
across policies (batched MDP decide, exact-mode fallback, per-seed baseline
fallback), cost models (static and time-varying), arrival processes,
deadlines, and horizon overrides — extending the PR 1 equivalence suite to
the seed axis.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.baselines.caching import (
    AlwaysUpdatePolicy,
    NeverUpdatePolicy,
    PeriodicUpdatePolicy,
    RandomUpdatePolicy,
)
from repro.baselines.service import AlwaysServePolicy, CostGreedyPolicy
from repro.core.caching_mdp import MDPCachingPolicy
from repro.core.lyapunov import LyapunovServiceController
from repro.exceptions import ValidationError
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import CacheSimulator, JointSimulator, ServiceSimulator

SEEDS = [0, 3, 11]


def assert_cache_results_identical(single, batched):
    assert np.array_equal(
        single.metrics.age_matrix_history(), batched.metrics.age_matrix_history()
    )
    assert np.array_equal(
        single.metrics.action_matrix_history(),
        batched.metrics.action_matrix_history(),
    )
    assert single.metrics.reward.totals == batched.metrics.reward.totals
    assert single.metrics.reward.costs == batched.metrics.reward.costs
    assert (
        single.metrics.reward.aoi_utilities == batched.metrics.reward.aoi_utilities
    )
    assert single.summary() == batched.summary()


def assert_cache_batch_identical(config, make_policy, num_slots=None, seeds=SEEDS):
    singles = [
        CacheSimulator(
            config.with_overrides(seed=seed),
            make_policy(config.with_overrides(seed=seed)),
        ).run(num_slots=num_slots)
        for seed in seeds
    ]
    batch = CacheSimulator(config, make_policy(config)).run_batch(
        seeds,
        policies=[
            make_policy(config.with_overrides(seed=seed)) for seed in seeds
        ],
        num_slots=num_slots,
    )
    assert len(batch) == len(seeds)
    for single, batched in zip(singles, batch):
        assert_cache_results_identical(single, batched)


def assert_service_batch_identical(config, make_policy, num_slots=None, **kwargs):
    singles = [
        ServiceSimulator(
            config.with_overrides(seed=seed),
            make_policy(config.with_overrides(seed=seed)),
            **kwargs,
        ).run(num_slots=num_slots)
        for seed in SEEDS
    ]
    batch = ServiceSimulator(config, make_policy(config), **kwargs).run_batch(
        SEEDS,
        policies=[
            make_policy(config.with_overrides(seed=seed)) for seed in SEEDS
        ],
        num_slots=num_slots,
    )
    for single, batched in zip(singles, batch):
        for history in ("backlog_history", "latency_history", "cost_history"):
            assert np.array_equal(
                getattr(single.metrics, history)(),
                getattr(batched.metrics, history)(),
            ), history
        assert single.summary() == batched.summary()


class TestCacheBatchEquivalence:
    def test_mdp_policy_fig1a_uses_batched_decide(self):
        # All-factored MDP controllers take the stacked gather + argmax path.
        config = ScenarioConfig.fig1a(seed=0).with_overrides(num_slots=80)
        assert_cache_batch_identical(
            config, lambda cfg: MDPCachingPolicy(cfg.build_mdp_config())
        )

    def test_exact_mode_small_scenario_falls_back(self):
        # The small scenario selects the exact per-RSU mode, which cannot
        # stack: the batch must fall back to per-seed decides and still match.
        config = ScenarioConfig.small(seed=3, num_slots=60)
        assert_cache_batch_identical(
            config, lambda cfg: MDPCachingPolicy(cfg.build_mdp_config())
        )

    @pytest.mark.parametrize(
        "make_policy",
        [
            lambda cfg: NeverUpdatePolicy(),
            lambda cfg: AlwaysUpdatePolicy(),
            lambda cfg: PeriodicUpdatePolicy(period=3),
            lambda cfg: RandomUpdatePolicy(rate=0.4, rng=123),
        ],
        ids=["never", "always", "periodic", "random"],
    )
    def test_baseline_policies_fall_back_per_seed(self, make_policy):
        config = ScenarioConfig.fig1a(seed=5).with_overrides(num_slots=50)
        assert_cache_batch_identical(config, make_policy)

    def test_fading_cost_model_reprepares_every_slot(self):
        # Time-varying costs force a per-slot re-solve in the per-run path;
        # the batched path must re-prepare its stacked tables identically.
        config = ScenarioConfig.fig1a(seed=2).with_overrides(
            num_slots=50, cost_model_kind="fading", cost_sigma=0.5
        )
        assert_cache_batch_identical(
            config, lambda cfg: MDPCachingPolicy(cfg.build_mdp_config())
        )

    def test_distance_cost_model(self):
        config = ScenarioConfig.fig1a(seed=2).with_overrides(
            num_slots=50, cost_model_kind="distance"
        )
        assert_cache_batch_identical(
            config, lambda cfg: MDPCachingPolicy(cfg.build_mdp_config())
        )

    def test_horizon_override(self):
        config = ScenarioConfig.small(seed=9)
        assert_cache_batch_identical(
            config,
            lambda cfg: MDPCachingPolicy(cfg.build_mdp_config()),
            num_slots=25,
        )

    def test_single_seed_batch_equals_single_run(self):
        config = ScenarioConfig.small(seed=4, num_slots=40)
        assert_cache_batch_identical(
            config,
            lambda cfg: MDPCachingPolicy(cfg.build_mdp_config()),
            seeds=[4],
        )

    def test_default_policies_deep_copy_the_instance(self):
        # policies=None must replicate the per-run semantics: every seed
        # starts from a pristine deep copy of the simulator's own policy, so
        # a stochastic instance replays its internal stream per seed.
        config = ScenarioConfig.small(seed=6, num_slots=40)
        policy = RandomUpdatePolicy(rate=0.5, rng=99)
        singles = [
            CacheSimulator(
                config.with_overrides(seed=seed), copy.deepcopy(policy)
            ).run()
            for seed in SEEDS
        ]
        batch = CacheSimulator(config, policy).run_batch(SEEDS)
        for single, batched in zip(singles, batch):
            assert_cache_results_identical(single, batched)

    def test_reference_batch_matches_reference_runs(self):
        config = ScenarioConfig.small(seed=2, num_slots=30)
        singles = [
            CacheSimulator(
                config.with_overrides(seed=seed), PeriodicUpdatePolicy(period=2),
                reference=True,
            ).run()
            for seed in SEEDS
        ]
        batch = CacheSimulator(
            config, PeriodicUpdatePolicy(period=2), reference=True
        ).run_batch(SEEDS)
        for single, batched in zip(singles, batch):
            assert_cache_results_identical(single, batched)

    def test_invalid_batches_rejected(self):
        config = ScenarioConfig.small(seed=0, num_slots=10)
        simulator = CacheSimulator(config, NeverUpdatePolicy())
        with pytest.raises(ValidationError):
            simulator.run_batch([])
        with pytest.raises(ValidationError):
            simulator.run_batch([-1])
        with pytest.raises(ValidationError):
            simulator.run_batch([0, 1], policies=[NeverUpdatePolicy()])


class TestServiceBatchEquivalence:
    def test_lyapunov_fig1b(self):
        config = ScenarioConfig.fig1b(seed=0).with_overrides(num_slots=100)
        assert_service_batch_identical(
            config, lambda cfg: LyapunovServiceController(cfg.tradeoff_v)
        )

    def test_always_serve(self):
        config = ScenarioConfig.fig1b(seed=4).with_overrides(num_slots=80)
        assert_service_batch_identical(config, lambda cfg: AlwaysServePolicy())

    def test_deadlines_poisson_and_service_batch(self):
        config = ScenarioConfig.fig1b(seed=6).with_overrides(
            num_slots=80,
            deadline_slots=4,
            arrival_kind="poisson",
            arrival_rate=3.0,
        )
        assert_service_batch_identical(
            config, lambda cfg: LyapunovServiceController(5.0), service_batch=2
        )

    def test_cost_greedy(self):
        config = ScenarioConfig.fig1b(seed=4).with_overrides(
            num_slots=80, arrival_kind="poisson", arrival_rate=2.0
        )
        assert_service_batch_identical(
            config, lambda cfg: CostGreedyPolicy(backlog_cap=20.0)
        )


class TestJointBatchEquivalence:
    @pytest.mark.parametrize("base_seed", [0, 7])
    def test_mdp_plus_lyapunov(self, base_seed):
        config = ScenarioConfig.small(
            seed=base_seed, num_slots=80, arrival_rate=0.8
        )
        singles = [
            JointSimulator(
                config.with_overrides(seed=seed),
                MDPCachingPolicy(config.build_mdp_config()),
                LyapunovServiceController(config.tradeoff_v),
            ).run()
            for seed in SEEDS
        ]
        batch = JointSimulator(
            config,
            MDPCachingPolicy(config.build_mdp_config()),
            LyapunovServiceController(config.tradeoff_v),
        ).run_batch(
            SEEDS,
            caching_policies=[
                MDPCachingPolicy(config.build_mdp_config()) for _ in SEEDS
            ],
            service_policies=[
                LyapunovServiceController(config.tradeoff_v) for _ in SEEDS
            ],
        )
        for single, batched in zip(singles, batch):
            assert np.array_equal(
                single.cache_metrics.age_matrix_history(),
                batched.cache_metrics.age_matrix_history(),
            )
            assert np.array_equal(
                single.cache_metrics.action_matrix_history(),
                batched.cache_metrics.action_matrix_history(),
            )
            assert np.array_equal(
                single.service_metrics.backlog_history(),
                batched.service_metrics.backlog_history(),
            )
            assert np.array_equal(
                single.service_metrics.latency_history(),
                batched.service_metrics.latency_history(),
            )
            assert single.summary() == batched.summary()

    def test_aoi_guard_blocks_identically_without_updates(self):
        # A never-updating cache stales out: the per-seed AoI guards must
        # block service at exactly the same slots reading the live tensor.
        config = ScenarioConfig.small(seed=7).with_overrides(
            num_slots=60, arrival_rate=1.0
        )
        singles = [
            JointSimulator(
                config.with_overrides(seed=seed),
                NeverUpdatePolicy(),
                LyapunovServiceController(1.0),
            ).run()
            for seed in SEEDS
        ]
        batch = JointSimulator(
            config, NeverUpdatePolicy(), LyapunovServiceController(1.0)
        ).run_batch(SEEDS)
        for single, batched in zip(singles, batch):
            assert (
                single.service_metrics.total_served
                == batched.service_metrics.total_served
            )
            assert single.summary() == batched.summary()
