"""Summary-mode and slot-blocked metrics equivalence.

``metrics="summary"`` collectors must produce ``summary()`` / ``rows()``
output byte-identical to ``metrics="full"`` — across all three simulators,
every execution mode (reference / vectorized / batch), every registered
workload model, and any metrics block size.  These tests pin that contract,
plus the summary-mode error surface and the cached-reduction semantics of
the array-backed collectors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reward import RewardBreakdown
from repro.exceptions import SimulationError, ValidationError
from repro.sim import simulate
from repro.sim.metrics import CacheMetrics, RewardTrace, ServiceMetrics
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import CacheSimulator, JointSimulator, ServiceSimulator
from repro.workloads import export_trace, workload_names
from repro.workloads.registry import WorkloadSpec

SLOTS = 40


def cache_scenario(**overrides):
    return ScenarioConfig.small(seed=3, num_slots=SLOTS, **overrides)


def run_cache(mode, metrics, **kwargs):
    config = cache_scenario()
    from repro.core.caching_mdp import MDPCachingPolicy

    policy = MDPCachingPolicy(config.build_mdp_config())
    simulator = CacheSimulator(
        config, policy, reference=(mode == "reference"), metrics=metrics, **kwargs
    )
    if mode == "batch":
        return simulator.run_batch([3])[0]
    return simulator.run()


class TestSummaryEqualsFull:
    @pytest.mark.parametrize("mode", ["reference", "vectorized", "batch"])
    def test_cache_kind(self, mode):
        full = run_cache(mode, "full")
        summary = run_cache(mode, "summary")
        assert full.summary() == summary.summary()
        assert full.rows() == summary.rows()

    @pytest.mark.parametrize("mode", ["reference", "vectorized", "batch"])
    def test_service_kind(self, mode):
        from repro.core.lyapunov import LyapunovServiceController

        config = ScenarioConfig.fig1b(seed=1).with_overrides(num_slots=SLOTS)
        results = {}
        for metrics in ("full", "summary"):
            simulator = ServiceSimulator(
                config,
                LyapunovServiceController(config.tradeoff_v),
                reference=(mode == "reference"),
                metrics=metrics,
            )
            results[metrics] = (
                simulator.run_batch([1])[0] if mode == "batch" else simulator.run()
            )
        assert results["full"].summary() == results["summary"].summary()
        assert results["full"].rows() == results["summary"].rows()

    @pytest.mark.parametrize("mode", ["reference", "vectorized", "batch"])
    def test_joint_kind(self, mode):
        from repro.core.caching_mdp import MDPCachingPolicy
        from repro.core.lyapunov import LyapunovServiceController

        config = ScenarioConfig.small(seed=5, num_slots=SLOTS, arrival_rate=0.8)
        results = {}
        for metrics in ("full", "summary"):
            simulator = JointSimulator(
                config,
                MDPCachingPolicy(config.build_mdp_config()),
                LyapunovServiceController(config.tradeoff_v),
                reference=(mode == "reference"),
                metrics=metrics,
            )
            results[metrics] = (
                simulator.run_batch([5])[0] if mode == "batch" else simulator.run()
            )
        assert results["full"].summary() == results["summary"].summary()
        assert results["full"].rows() == results["summary"].rows()

    @pytest.mark.parametrize("block_size", [1, 3, 7, 1000])
    def test_block_size_never_changes_output(self, block_size):
        baseline = run_cache("vectorized", "full")
        blocked = run_cache("vectorized", "full", block_size=block_size)
        assert baseline.summary() == blocked.summary()
        assert np.array_equal(
            baseline.metrics.age_matrix_history(),
            blocked.metrics.age_matrix_history(),
        )
        assert np.array_equal(
            baseline.metrics.action_matrix_history(),
            blocked.metrics.action_matrix_history(),
        )
        assert baseline.metrics.reward.totals == blocked.metrics.reward.totals

    @pytest.mark.parametrize("block_size", [1, 3, 1000])
    def test_summary_block_sizes(self, block_size):
        baseline = run_cache("vectorized", "full")
        summary = run_cache("vectorized", "summary", block_size=block_size)
        assert baseline.summary() == summary.summary()

    def test_every_workload_model(self, tmp_path):
        """summary == full for every registered workload, joint kind, all modes."""
        from repro.core.caching_mdp import MDPCachingPolicy
        from repro.core.lyapunov import LyapunovServiceController
        from repro.sim.system import SystemState

        for name in workload_names():
            if name == "trace":
                base = ScenarioConfig.small(seed=7, num_slots=SLOTS)
                path = str(tmp_path / "workload.jsonl")
                export_trace(SystemState(base).workload, SLOTS, path)
                workload = f"trace:path={path}"
            else:
                workload = name
            config = ScenarioConfig.small(
                seed=7, num_slots=SLOTS, arrival_rate=0.9, workload=workload
            )
            for mode in ("reference", "vectorized", "batch"):
                results = {}
                for metrics in ("full", "summary"):
                    simulator = JointSimulator(
                        config,
                        MDPCachingPolicy(config.build_mdp_config()),
                        LyapunovServiceController(config.tradeoff_v),
                        reference=(mode == "reference"),
                        metrics=metrics,
                    )
                    results[metrics] = (
                        simulator.run_batch([7])[0]
                        if mode == "batch"
                        else simulator.run()
                    )
                assert results["full"].summary() == results["summary"].summary(), (
                    name,
                    mode,
                )

    def test_simulate_facade_threads_metrics(self):
        config = cache_scenario()
        full = simulate(config, "mdp", metrics="full")
        summary = simulate(config, "mdp", metrics="summary", block_size=5)
        assert full.summary() == summary.summary()
        batch_full = simulate(config, "mdp", seeds=2, metrics="full")
        batch_summary = simulate(config, "mdp", seeds=2, metrics="summary")
        for one, other in zip(batch_full, batch_summary):
            assert one.summary() == other.summary()

    def test_simulate_rejects_unknown_metrics(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            simulate(cache_scenario(), "mdp", metrics="everything")


class TestSummaryModeSurface:
    def test_traces_survive_summary_mode(self):
        result = run_cache("vectorized", "summary")
        full = run_cache("vectorized", "full")
        np.testing.assert_array_equal(result.cumulative_reward, full.cumulative_reward)
        assert result.metrics.reward.totals == full.metrics.reward.totals

    def test_service_headline_histories_survive_summary_mode(self):
        from repro.core.lyapunov import LyapunovServiceController

        config = ScenarioConfig.fig1b(seed=2).with_overrides(num_slots=SLOTS)
        results = {
            metrics: ServiceSimulator(
                config,
                LyapunovServiceController(config.tradeoff_v),
                metrics=metrics,
            ).run()
            for metrics in ("full", "summary")
        }
        for history in ("backlog_history", "latency_history", "cost_history"):
            np.testing.assert_array_equal(
                getattr(results["full"].metrics, history)(),
                getattr(results["summary"].metrics, history)(),
            )

    def test_matrix_accessors_raise_in_summary_mode(self):
        result = run_cache("vectorized", "summary")
        with pytest.raises(SimulationError):
            result.metrics.age_matrix_history()
        with pytest.raises(SimulationError):
            result.metrics.action_matrix_history()
        with pytest.raises(SimulationError):
            result.metrics.age_trace(0, 0)
        # The streamed reward components keep their reductions but not the
        # per-slot vectors.
        with pytest.raises(SimulationError):
            result.metrics.reward.costs
        with pytest.raises(SimulationError):
            result.metrics.reward.aoi_utilities
        full = run_cache("vectorized", "full")
        assert result.metrics.reward.total_cost == full.metrics.reward.total_cost
        assert (
            result.metrics.reward.total_aoi_utility
            == full.metrics.reward.total_aoi_utility
        )

    def test_streaming_sum_matches_deferred_fold_past_chunk_boundary(self):
        from repro.sim.metrics import STREAM_CHUNK, _StreamingSum, _chunked_sum

        rng = np.random.default_rng(7)
        values = rng.uniform(-1.0, 1.0, size=2 * STREAM_CHUNK + 137)
        stream = _StreamingSum()
        stream.push(float(values[0]))
        stream.extend(values[1:900])
        stream.extend(values[900:])
        assert stream.total == _chunked_sum(values)
        assert stream.count == values.size

    def test_per_rsu_histories_raise_in_summary_mode(self):
        metrics = ServiceMetrics(2, mode="summary")
        metrics.record_slot([1.0, 2.0], [2.0, 4.0], [0.5, 0.0], [True, False], [1, 0])
        with pytest.raises(SimulationError):
            metrics.backlog_history(rsu=0)
        np.testing.assert_allclose(metrics.backlog_history(), [3.0])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValidationError):
            ServiceMetrics(2, mode="compact")
        with pytest.raises(ValidationError):
            CacheMetrics(2, 2, np.ones((2, 2)), mode="compact")
        with pytest.raises(ValidationError):
            CacheSimulator(cache_scenario(), None, metrics="compact")


class TestBlockRecordingPrimitives:
    def test_cache_record_block_matches_record_slot(self):
        max_ages = np.array([[4.0, 6.0], [8.0, 10.0]])
        rng = np.random.default_rng(0)
        ages = rng.uniform(1.0, 12.0, size=(5, 2, 2))
        actions = rng.integers(0, 2, size=(5, 2, 2))
        aoi = rng.uniform(0.0, 5.0, size=5)
        costs = rng.uniform(0.0, 2.0, size=5)
        totals = aoi - costs
        one = CacheMetrics(2, 2, max_ages)
        for t in range(5):
            one.record_slot(
                t,
                ages[t],
                actions[t],
                RewardBreakdown(float(aoi[t]), float(costs[t]), 1.0),
            )
        other = CacheMetrics(2, 2, max_ages)
        other.record_block(
            0, ages[:3], actions[:3], (aoi - costs + costs)[:3], costs[:3], totals[:3]
        )
        other.record_block(3, ages[3:], actions[3:], aoi[3:], costs[3:], totals[3:])
        assert one.summary() == other.summary()
        assert np.array_equal(one.age_matrix_history(), other.age_matrix_history())
        assert np.array_equal(
            one.action_matrix_history(), other.action_matrix_history()
        )
        trace_one = one.age_trace(1, 0)
        trace_other = other.age_trace(1, 0)
        np.testing.assert_array_equal(trace_one.ages, trace_other.ages)

    def test_service_record_block_matches_record_slot(self):
        rng = np.random.default_rng(1)
        rows = rng.uniform(0.0, 5.0, size=(6, 5, 3))
        decisions = rng.integers(0, 2, size=(6, 3)).astype(float)
        one = ServiceMetrics(3)
        for t in range(6):
            one.record_slot(
                rows[t, 0], rows[t, 1], rows[t, 2], decisions[t], rows[t, 4]
            )
        other = ServiceMetrics(3)
        other.record_block(
            rows[:4, 0], rows[:4, 1], rows[:4, 2], decisions[:4], rows[:4, 4]
        )
        other.record_block(
            rows[4:, 0], rows[4:, 1], rows[4:, 2], decisions[4:], rows[4:, 4]
        )
        assert one.summary() == other.summary()
        for history in ("backlog_history", "latency_history", "cost_history"):
            np.testing.assert_array_equal(
                getattr(one, history)(), getattr(other, history)()
            )
            np.testing.assert_array_equal(
                getattr(one, history)(rsu=1), getattr(other, history)(rsu=1)
            )

    def test_record_block_aggregates_is_summary_only(self):
        metrics = CacheMetrics(1, 1, np.ones((1, 1)))
        with pytest.raises(ValidationError):
            metrics.record_block_aggregates(
                np.ones(1), np.ones(1), np.ones(1), np.ones(1), 0, 0
            )

    def test_reward_trace_reductions_cached_and_invalidated(self):
        trace = RewardTrace()
        trace.record(RewardBreakdown(2.0, 1.0, 1.0))
        assert trace.total_reward == pytest.approx(1.0)
        # The cumsum is cached internally (returned as a fresh copy)...
        assert trace.cumulative_reward is not trace.cumulative_reward
        assert "cumulative_reward" in trace._cache
        # ...and mutating a returned copy never corrupts the trace.
        trace.cumulative_reward[:] = -1.0
        np.testing.assert_allclose(trace.cumulative_reward, [1.0])
        # The next append invalidates every cached reduction.
        trace.record(RewardBreakdown(4.0, 1.0, 1.0))
        assert trace.total_reward == pytest.approx(4.0)
        np.testing.assert_allclose(trace.cumulative_reward, [1.0, 4.0])

    def test_slot_buffers_grow_past_initial_capacity(self):
        metrics = ServiceMetrics(2)
        for t in range(200):
            metrics.record_slot([1.0, 2.0], [0.0, 0.0], [0.5, 0.5], [1, 0], [1, 0])
        assert metrics.num_slots_recorded == 200
        assert metrics.total_cost == pytest.approx(200.0)
        assert metrics.backlog_history().shape == (200,)
        assert metrics.backlog_history(rsu=1).shape == (200,)
