"""Tests for repro.sim.engine (the unified ``simulate`` façade).

Covers kind inference, mode dispatch, and — the deprecation-shim contract —
bit-identical results between the old per-kind entry points and the façade.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.caching_mdp import MDPCachingPolicy
from repro.core.lyapunov import LyapunovServiceController
from repro.exceptions import ConfigurationError
from repro.policies import PolicySpec
from repro.sim import (
    CacheSimulationResult,
    JointSimulationResult,
    ServiceSimulationResult,
    SimulationResult,
    simulate,
)
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import CacheSimulator, JointSimulator, ServiceSimulator


@pytest.fixture
def config():
    return ScenarioConfig.small(seed=11, num_slots=40)


class TestKindInference:
    def test_caching_policy_runs_cache_kind(self, config):
        result = simulate(config, "mdp")
        assert isinstance(result, CacheSimulationResult)
        assert type(result).kind == "cache"

    def test_service_policy_runs_service_kind(self, config):
        result = simulate(config, "lyapunov")
        assert isinstance(result, ServiceSimulationResult)

    def test_pair_runs_joint_kind(self, config):
        result = simulate(config, ("mdp", "lyapunov"))
        assert isinstance(result, JointSimulationResult)

    def test_dict_roles(self, config):
        result = simulate(config, {"caching": "mdp", "service": "lyapunov"})
        assert isinstance(result, JointSimulationResult)

    def test_policy_instances_accepted(self, config):
        policy = MDPCachingPolicy(config.build_mdp_config())
        result = simulate(config, policy)
        assert isinstance(result, CacheSimulationResult)

    def test_explicit_kind_mismatch_rejected(self, config):
        with pytest.raises(ConfigurationError, match="kind"):
            simulate(config, "mdp", kind="service")

    def test_wrong_role_in_slot_rejected(self, config):
        with pytest.raises(ConfigurationError, match="caching"):
            simulate(config, ("lyapunov", "mdp"))

    def test_unknown_role_key_rejected(self, config):
        with pytest.raises(ConfigurationError, match="role"):
            simulate(config, {"cache": "mdp"})

    def test_bad_mode_rejected(self, config):
        with pytest.raises(ConfigurationError, match="mode"):
            simulate(config, "mdp", mode="turbo")

    def test_batch_mode_needs_seeds(self, config):
        with pytest.raises(ConfigurationError, match="seeds"):
            simulate(config, "mdp", mode="batch")

    def test_service_batch_rejected_for_cache(self, config):
        with pytest.raises(ConfigurationError, match="service_batch"):
            simulate(config, "mdp", service_batch=2)


class TestShimEquivalence:
    """Old entry points stay bit-identical to the façade."""

    def test_cache_simulator_run_matches_simulate(self, config):
        old = CacheSimulator(
            config, MDPCachingPolicy(config.build_mdp_config())
        ).run()
        new = simulate(config, "mdp")
        assert old.summary() == new.summary()
        assert np.array_equal(old.cumulative_reward, new.cumulative_reward)
        assert np.array_equal(
            old.metrics.age_matrix_history(), new.metrics.age_matrix_history()
        )

    def test_cache_reference_matches_simulate_reference(self, config):
        old = CacheSimulator(
            config, MDPCachingPolicy(config.build_mdp_config()), reference=True
        ).run()
        new = simulate(config, "mdp", mode="reference")
        assert old.summary() == new.summary()
        assert np.array_equal(old.cumulative_reward, new.cumulative_reward)

    def test_service_simulator_run_matches_simulate(self, config):
        old = ServiceSimulator(
            config, LyapunovServiceController(config.tradeoff_v)
        ).run()
        new = simulate(config, "lyapunov")
        assert old.summary() == new.summary()
        assert np.array_equal(old.latency_history, new.latency_history)

    def test_joint_simulator_run_matches_simulate(self, config):
        old = JointSimulator(
            config,
            MDPCachingPolicy(config.build_mdp_config()),
            LyapunovServiceController(config.tradeoff_v),
        ).run()
        new = simulate(config, ("mdp", "lyapunov"))
        assert old.summary() == new.summary()

    def test_run_batch_matches_simulate_batch(self, config):
        seeds = [2, 5, 9]
        old = CacheSimulator(
            config, MDPCachingPolicy(config.build_mdp_config())
        ).run_batch(seeds)
        new = simulate(config, "mdp", seeds=seeds, mode="batch")
        assert len(old) == len(new) == 3
        for mine, theirs in zip(old, new):
            assert mine.summary() == theirs.summary()
            assert np.array_equal(
                mine.cumulative_reward, theirs.cumulative_reward
            )


class TestModesAgree:
    def test_all_modes_bit_identical(self, config):
        seeds = [3, 8]
        batch = simulate(config, "mdp", seeds=seeds, mode="batch")
        vectorized = simulate(config, "mdp", seeds=seeds, mode="vectorized")
        reference = simulate(config, "mdp", seeds=seeds, mode="reference")
        auto = simulate(config, "mdp", seeds=seeds)
        for group in (vectorized, reference, auto):
            for mine, theirs in zip(batch, group):
                assert mine.summary() == theirs.summary()
                assert np.array_equal(
                    mine.cumulative_reward, theirs.cumulative_reward
                )

    def test_joint_modes_agree(self, config):
        seeds = [1, 4]
        batch = simulate(config, ("mdp", "lyapunov"), seeds=seeds, mode="batch")
        reference = simulate(
            config, ("mdp", "lyapunov"), seeds=seeds, mode="reference"
        )
        for mine, theirs in zip(batch, reference):
            assert mine.summary() == theirs.summary()

    def test_stochastic_instance_is_replicated_per_seed(self, config):
        # Each seed must start from a pristine copy of a supplied policy
        # instance in every mode; sharing one instance would advance its
        # RNG across seeds and break the cross-mode contract.
        from repro.baselines.caching import RandomUpdatePolicy

        seeds = [3, 11]
        batch = simulate(
            config, RandomUpdatePolicy(0.5, rng=7), seeds=seeds, mode="batch"
        )
        vectorized = simulate(
            config, RandomUpdatePolicy(0.5, rng=7), seeds=seeds,
            mode="vectorized",
        )
        reference = simulate(
            config, RandomUpdatePolicy(0.5, rng=7), seeds=seeds,
            mode="reference",
        )
        for group in (vectorized, reference):
            for mine, theirs in zip(batch, group):
                assert mine.summary() == theirs.summary()

    def test_int_seeds_match_runner_derivation(self, config):
        from repro.utils.rng import spawn_run_seeds

        implicit = simulate(config, "mdp", seeds=3)
        explicit = simulate(
            config, "mdp", seeds=spawn_run_seeds(config.seed, 3)
        )
        for mine, theirs in zip(implicit, explicit):
            assert mine.summary() == theirs.summary()
            assert mine.config.seed == theirs.config.seed


class TestResultSurface:
    def test_rows_have_stable_prefix(self, config):
        result = simulate(config, "mdp")
        (row,) = result.rows()
        assert list(row)[:3] == ["kind", "seed", "workload"]
        assert row["kind"] == "cache"
        assert row["workload"] == "stationary"

    def test_to_dict_is_json_serializable(self, config):
        import json

        result = simulate(config, ("mdp", "lyapunov"))
        text = json.dumps(result.to_dict())
        data = json.loads(text)
        assert data["kind"] == "joint"
        assert data["workload"]["name"] == "stationary"
        assert data["summary"]["caching_policy"] == "mdp"

    def test_results_share_the_base_class(self, config):
        for policies in ("mdp", "lyapunov", ("mdp", "lyapunov")):
            assert isinstance(simulate(config, policies), SimulationResult)

    def test_spec_built_policies_with_params(self, config):
        result = simulate(config, PolicySpec.parse("threshold:threshold=0.5"))
        assert result.summary()["policy"] == "threshold"


class TestMultihopDispatch:
    """PR 8: the façade routes on-path policies through the network core."""

    def test_onpath_name_infers_multihop(self, config):
        pytest.importorskip("networkx")
        result = simulate(config, "lce")
        assert type(result).kind == "multihop"

    def test_mixed_role_grid_runs_policy_major(self, config):
        pytest.importorskip("networkx")
        results = simulate(
            config, ["lce", "probcache:t_tw=10", "mdp"], seeds=2
        )
        assert len(results) == 6
        assert [r.policy_name for r in results] == [
            "lce", "lce", "probcache", "probcache", "mdp", "mdp"
        ]
        assert all(type(r).kind == "multihop" for r in results)

    def test_explicit_kind_runs_caching_policy_as_placement(self, config):
        pytest.importorskip("networkx")
        result = simulate(config, "mdp", kind="multihop")
        assert type(result).kind == "multihop"
        assert result.summary()["total_served"] == result.summary()[
            "total_requests"
        ]

    def test_joint_pair_keeps_historical_meaning(self, config):
        result = simulate(config, ("mdp", "lyapunov"))
        assert isinstance(result, JointSimulationResult)

    def test_kind_mismatch_rejected(self, config):
        pytest.importorskip("networkx")
        with pytest.raises(ConfigurationError, match="kind"):
            simulate(config, "lce", kind="cache")

    def test_service_batch_rejected(self, config):
        pytest.importorskip("networkx")
        with pytest.raises(ConfigurationError, match="service_batch"):
            simulate(config, "lce", service_batch=2)

    def test_modes_bit_identical(self, config):
        pytest.importorskip("networkx")
        reference = simulate(config, "lcd", mode="reference")
        vectorized = simulate(config, "lcd", mode="vectorized")
        assert reference.summary() == vectorized.summary()
