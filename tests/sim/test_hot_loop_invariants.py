"""Property-based invariants of the vectorised hot loops.

Hypothesis drives random action/cost sequences through the primitives the
vectorised simulators are built on and asserts the invariants the paper's
model guarantees: ages stay in ``[1, ceiling]`` and grow monotonically
between refreshes, :class:`LinkBudget` accounting equals the sum of the
applied update costs, and the vectorised cache loop never lets an age
escape its saturation band no matter which update pattern a policy emits.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aoi import AoIVector
from repro.net.channel import ConstantCostModel, LinkBudget
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import CacheSimulator
from repro.core.policies import CachingPolicy


MAX_AGES = st.lists(
    st.floats(min_value=2.0, max_value=20.0, allow_nan=False),
    min_size=1,
    max_size=6,
)

# A run of slots: each slot optionally refreshes one content index.
ACTION_SEQUENCES = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
    min_size=1,
    max_size=40,
)


class ScriptedPolicy(CachingPolicy):
    """Replays a pre-drawn per-slot (rsu, slot) update script."""

    name = "scripted"

    def __init__(self, script):
        self._script = script

    def decide(self, observation):
        actions = np.zeros(
            (observation.num_rsus, observation.contents_per_rsu), dtype=int
        )
        entry = self._script[observation.time_slot % len(self._script)]
        if entry is not None:
            rsu, slot = entry
            actions[rsu % observation.num_rsus, slot % observation.contents_per_rsu] = 1
        return actions


@settings(max_examples=40, deadline=None)
@given(max_ages=MAX_AGES, script=ACTION_SEQUENCES)
def test_aoi_vector_stays_in_saturation_band(max_ages, script):
    vector = AoIVector(max_ages)
    ceiling = vector.ceiling
    for entry in script:
        vector.tick(1)
        if entry is not None:
            vector.refresh(entry % len(max_ages), 1.0)
        ages = vector.ages
        assert np.all(ages >= 1.0)
        assert np.all(ages <= ceiling)


@settings(max_examples=40, deadline=None)
@given(max_ages=MAX_AGES, ticks=st.integers(min_value=1, max_value=50))
def test_tick_monotone_until_saturation_without_refresh(max_ages, ticks):
    vector = AoIVector(max_ages)
    previous = vector.ages
    for _ in range(ticks):
        current = vector.tick(1)
        # Ages never decrease without a refresh, and stop growing exactly at
        # the ceiling.
        assert np.all(current >= previous)
        assert np.all(current[previous < vector.ceiling] > previous[previous < vector.ceiling])
        assert np.all(current <= vector.ceiling)
        previous = current


@settings(max_examples=40, deadline=None)
@given(
    costs=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=0,
        max_size=50,
    )
)
def test_link_budget_equals_sum_of_charges(costs):
    sequential = LinkBudget()
    batched = LinkBudget()
    for cost in costs:
        sequential.charge(cost)
    batched.charge_many(costs)
    assert sequential.num_transfers == batched.num_transfers == len(costs)
    assert sequential.total_cost == pytest.approx(sum(costs))
    assert batched.total_cost == pytest.approx(sum(costs))


def test_link_budget_rejects_negative_batch():
    from repro.exceptions import ValidationError

    with pytest.raises(ValidationError):
        LinkBudget().charge_many([1.0, -0.5])


@settings(max_examples=15, deadline=None)
@given(
    script=st.lists(
        st.one_of(
            st.none(),
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=7),
            ),
        ),
        min_size=1,
        max_size=30,
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_vectorized_cache_loop_invariants(script, seed):
    """Random update scripts: ages bounded, charges equal applied costs."""
    config = ScenarioConfig.small(seed=seed, num_slots=len(script))
    result = CacheSimulator(config, ScriptedPolicy(script)).run()
    history = result.metrics.age_matrix_history()
    actions = result.metrics.action_matrix_history()
    # Ages recorded by the hot loop stay within [1, 2 * max(A_max)] — the
    # per-cache saturation band — for every slot, RSU, and content.
    assert np.all(history >= 1.0)
    ceilings = 2.0 * result.metrics._max_ages.max(axis=1, keepdims=True)
    assert np.all(history <= ceilings[np.newaxis, :, :] + 1e-12)
    # A refreshed copy is observed at age exactly 1 in the same slot.
    assert np.all(history[actions > 0] == 1.0)
    # The accumulated cost equals cost-per-update times update count for the
    # constant cost model of the small scenario.
    assert isinstance(config.build_update_cost_model(), ConstantCostModel)
    expected = config.update_cost * actions.sum()
    assert result.metrics.reward.total_cost == pytest.approx(expected)
