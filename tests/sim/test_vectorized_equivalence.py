"""Golden-trajectory equivalence: vectorised loops vs the scalar reference.

The vectorised simulators are only allowed to be *fast*; for a fixed seed
they must reproduce the scalar ``reference=True`` loop slot for slot — the
same ages, actions, reward breakdowns, backlogs, latencies, costs, and
decisions, compared with exact equality (no tolerances).  These tests pin
that contract across scenario shapes, cost models, arrival processes,
deadlines, and service batching.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.caching import (
    AlwaysUpdatePolicy,
    NeverUpdatePolicy,
    PeriodicUpdatePolicy,
    RandomUpdatePolicy,
)
from repro.baselines.service import AlwaysServePolicy, CostGreedyPolicy
from repro.core.caching_mdp import MDPCachingPolicy
from repro.core.lyapunov import LyapunovServiceController
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import CacheSimulator, JointSimulator, ServiceSimulator


def assert_cache_runs_identical(config, make_policy, num_slots=None):
    reference = CacheSimulator(config, make_policy(config), reference=True).run(
        num_slots=num_slots
    )
    vectorized = CacheSimulator(config, make_policy(config)).run(num_slots=num_slots)
    assert np.array_equal(
        reference.metrics.age_matrix_history(),
        vectorized.metrics.age_matrix_history(),
    )
    assert np.array_equal(
        reference.metrics.action_matrix_history(),
        vectorized.metrics.action_matrix_history(),
    )
    assert reference.metrics.reward.totals == vectorized.metrics.reward.totals
    assert reference.metrics.reward.costs == vectorized.metrics.reward.costs
    assert (
        reference.metrics.reward.aoi_utilities
        == vectorized.metrics.reward.aoi_utilities
    )
    assert reference.summary() == vectorized.summary()


def assert_service_runs_identical(config, make_policy, num_slots=None, **kwargs):
    reference = ServiceSimulator(
        config, make_policy(config), reference=True, **kwargs
    ).run(num_slots=num_slots)
    vectorized = ServiceSimulator(config, make_policy(config), **kwargs).run(
        num_slots=num_slots
    )
    for history in ("backlog_history", "latency_history", "cost_history"):
        assert np.array_equal(
            getattr(reference.metrics, history)(),
            getattr(vectorized.metrics, history)(),
        ), history
    assert reference.metrics.total_served == vectorized.metrics.total_served
    assert reference.metrics.service_rate == vectorized.metrics.service_rate
    assert reference.summary() == vectorized.summary()


class TestCacheSimulatorEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_mdp_policy_fig1a(self, seed):
        config = ScenarioConfig.fig1a(seed=seed).with_overrides(num_slots=80)
        assert_cache_runs_identical(
            config, lambda cfg: MDPCachingPolicy(cfg.build_mdp_config())
        )

    def test_exact_mode_small_scenario(self):
        # The small scenario keeps the joint state space under the exact
        # limit, exercising the exact-MDP decision path in both loops.
        config = ScenarioConfig.small(seed=3, num_slots=60)
        assert_cache_runs_identical(
            config, lambda cfg: MDPCachingPolicy(cfg.build_mdp_config())
        )

    @pytest.mark.parametrize(
        "make_policy",
        [
            lambda cfg: NeverUpdatePolicy(),
            lambda cfg: AlwaysUpdatePolicy(),
            lambda cfg: PeriodicUpdatePolicy(period=3),
            lambda cfg: RandomUpdatePolicy(rate=0.4, rng=123),
        ],
        ids=["never", "always", "periodic", "random"],
    )
    def test_baseline_policies(self, make_policy):
        config = ScenarioConfig.fig1a(seed=5).with_overrides(num_slots=60)
        assert_cache_runs_identical(config, make_policy)

    def test_fading_cost_model(self):
        # Time-varying costs: the per-slot log-normal gain must hit both
        # loops in the same RNG order.
        config = ScenarioConfig.fig1a(seed=2).with_overrides(
            num_slots=60, cost_model_kind="fading", cost_sigma=0.5
        )
        assert_cache_runs_identical(
            config, lambda cfg: MDPCachingPolicy(cfg.build_mdp_config())
        )

    def test_distance_cost_model(self):
        config = ScenarioConfig.fig1a(seed=2).with_overrides(
            num_slots=60, cost_model_kind="distance"
        )
        assert_cache_runs_identical(
            config, lambda cfg: MDPCachingPolicy(cfg.build_mdp_config())
        )

    def test_horizon_override(self):
        config = ScenarioConfig.small(seed=9)
        assert_cache_runs_identical(
            config,
            lambda cfg: MDPCachingPolicy(cfg.build_mdp_config()),
            num_slots=25,
        )


class TestServiceSimulatorEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_lyapunov_fig1b(self, seed):
        config = ScenarioConfig.fig1b(seed=seed).with_overrides(num_slots=120)
        assert_service_runs_identical(
            config, lambda cfg: LyapunovServiceController(cfg.tradeoff_v)
        )

    def test_always_serve(self):
        config = ScenarioConfig.fig1b(seed=4).with_overrides(num_slots=100)
        assert_service_runs_identical(config, lambda cfg: AlwaysServePolicy())

    def test_cost_greedy_with_poisson_arrivals(self):
        config = ScenarioConfig.fig1b(seed=4).with_overrides(
            num_slots=100, arrival_kind="poisson", arrival_rate=2.0
        )
        assert_service_runs_identical(
            config, lambda cfg: CostGreedyPolicy(backlog_cap=20.0)
        )

    def test_deadlines_and_service_batch(self):
        # Deadline expiry removes FIFO prefixes; batching serves partial
        # queues — both paths must agree on every departure.
        config = ScenarioConfig.fig1b(seed=6).with_overrides(
            num_slots=100,
            deadline_slots=4,
            arrival_kind="poisson",
            arrival_rate=3.0,
        )
        assert_service_runs_identical(
            config, lambda cfg: LyapunovServiceController(5.0), service_batch=2
        )


class TestJointSimulatorEquivalence:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_mdp_plus_lyapunov(self, seed):
        config = ScenarioConfig.small(seed=seed, num_slots=80, arrival_rate=0.8)
        reference = JointSimulator(
            config,
            MDPCachingPolicy(config.build_mdp_config()),
            LyapunovServiceController(config.tradeoff_v),
            reference=True,
        ).run()
        vectorized = JointSimulator(
            config,
            MDPCachingPolicy(config.build_mdp_config()),
            LyapunovServiceController(config.tradeoff_v),
        ).run()
        assert np.array_equal(
            reference.cache_metrics.age_matrix_history(),
            vectorized.cache_metrics.age_matrix_history(),
        )
        assert np.array_equal(
            reference.cache_metrics.action_matrix_history(),
            vectorized.cache_metrics.action_matrix_history(),
        )
        assert np.array_equal(
            reference.service_metrics.backlog_history(),
            vectorized.service_metrics.backlog_history(),
        )
        assert np.array_equal(
            reference.service_metrics.latency_history(),
            vectorized.service_metrics.latency_history(),
        )
        assert reference.summary() == vectorized.summary()

    def test_aoi_guard_blocks_identically_without_updates(self):
        # A never-updating cache stales out and the AoI guard must block
        # service at exactly the same slots in both loops.
        config = ScenarioConfig.small(seed=7).with_overrides(
            num_slots=80, arrival_rate=1.0
        )
        reference = JointSimulator(
            config,
            NeverUpdatePolicy(),
            LyapunovServiceController(1.0),
            reference=True,
        ).run()
        vectorized = JointSimulator(
            config, NeverUpdatePolicy(), LyapunovServiceController(1.0)
        ).run()
        assert (
            reference.service_metrics.total_served
            == vectorized.service_metrics.total_served
        )
        assert np.array_equal(
            reference.service_metrics.backlog_history(),
            vectorized.service_metrics.backlog_history(),
        )
        assert reference.summary() == vectorized.summary()
