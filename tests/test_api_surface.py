"""API-surface snapshot: accidental public-surface breaks fail fast.

Pins the exact contents of ``repro.__all__`` and both registry catalogs
(workloads and policies).  Intentional surface changes must update these
snapshots — that is the point: removing or renaming a public name is a
reviewed decision, never a side effect.
"""

from __future__ import annotations

import repro
from repro.policies import list_policies
from repro.workloads import workload_names

# The public import surface, grouped as in repro/__init__.py.
EXPECTED_ALL = {
    # baselines
    "AlwaysServePolicy",
    "AlwaysUpdatePolicy",
    "BacklogThresholdPolicy",
    "CostGreedyPolicy",
    "FixedProbabilityPolicy",
    "MyopicUpdatePolicy",
    "NeverServePolicy",
    "NeverUpdatePolicy",
    "PeriodicUpdatePolicy",
    "RandomUpdatePolicy",
    "ThresholdUpdatePolicy",
    "standard_caching_baselines",
    "standard_service_baselines",
    # core
    "AoICounter",
    "AoIProcess",
    "AoIVector",
    "CacheObservation",
    "CachingMDPConfig",
    "CachingPolicy",
    "ContentUpdateMDP",
    "LyapunovServiceController",
    "MDPCachingPolicy",
    "QLearningSolver",
    "RSUCachingMDP",
    "ServiceObservation",
    "ServicePolicy",
    "TabularMDP",
    "UtilityFunction",
    "policy_iteration",
    "run_backlog_simulation",
    "value_iteration",
    # exceptions
    "CacheError",
    "ConfigurationError",
    "ModelError",
    "QueueError",
    "ReproError",
    "SimulationError",
    "SolverError",
    "ValidationError",
    # net
    "ContentCatalog",
    "NetworkController",
    "NetworkModel",
    "NetworkView",
    "RequestGenerator",
    "RoadTopology",
    "RSUCache",
    "VehicleFleet",
    # policies
    "PolicySpec",
    "available_policies",
    "create_policy",
    "list_policies",
    "register_policy",
    # runtime
    "BatchResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "RunRecord",
    "RunSpec",
    "RunStore",
    "expand_seeds",
    "expand_workloads",
    "load_specs",
    "save_specs",
    # sim
    "CacheSimulationResult",
    "CacheSimulator",
    "JointSimulationResult",
    "JointSimulator",
    "MultihopSimulationResult",
    "MultihopSimulator",
    "ScenarioConfig",
    "ServiceSimulationResult",
    "ServiceSimulator",
    "SimulationResult",
    "simulate",
    # serve
    "ServeClient",
    "SimulationSession",
    "SlotResult",
    "open_session",
    # workloads
    "WorkloadModel",
    "WorkloadSpec",
    "available_workloads",
    "create_workload",
    "export_trace",
    "workload_names",
    # meta
    "__version__",
}

EXPECTED_WORKLOADS = ["drift", "flash-crowd", "shot-noise", "stationary", "trace"]

EXPECTED_CACHING_POLICIES = [
    "always", "mdp", "myopic", "never", "periodic", "random", "threshold",
]

EXPECTED_SERVICE_POLICIES = [
    "always-serve", "backlog-threshold", "cost-greedy", "fixed-probability",
    "lyapunov", "never-serve",
]

EXPECTED_ONPATH_POLICIES = [
    "cl4m", "edge", "lcd", "lce", "partition", "probcache",
]


class TestApiSurface:
    def test_all_snapshot(self):
        actual = set(repro.__all__)
        missing = EXPECTED_ALL - actual
        extra = actual - EXPECTED_ALL
        assert not missing, f"public names removed from repro.__all__: {sorted(missing)}"
        assert not extra, (
            f"new public names in repro.__all__ (update the snapshot): "
            f"{sorted(extra)}"
        )

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_workload_catalog_snapshot(self):
        assert workload_names() == EXPECTED_WORKLOADS

    def test_policy_catalog_snapshot(self):
        assert list_policies("caching") == EXPECTED_CACHING_POLICIES
        assert list_policies("service") == EXPECTED_SERVICE_POLICIES
        assert list_policies("onpath") == EXPECTED_ONPATH_POLICIES

    def test_simulation_modes_snapshot(self):
        from repro.runtime.spec import EXPERIMENT_MODES
        from repro.sim import METRICS_MODES, SIMULATION_KINDS, SIMULATION_MODES

        # PR 8: the multihop kind routes requests over the network graph.
        assert SIMULATION_KINDS == ("cache", "service", "joint", "multihop")
        assert SIMULATION_MODES == ("auto", "reference", "vectorized", "batch")
        assert EXPERIMENT_MODES == SIMULATION_MODES
        # PR 5: the metric collection knob threaded through simulate(), the
        # simulators, RunSpec/ExperimentSpec, and the CLI.
        assert METRICS_MODES == ("full", "summary")

    def test_metrics_knobs_in_simulate_signature(self):
        import inspect

        from repro import simulate

        parameters = inspect.signature(simulate).parameters
        assert parameters["metrics"].default == "full"
        assert parameters["block_size"].default is None
