"""Tests for repro.analysis.experiments (the experiment registry)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    ExperimentReport,
    available_experiments,
    run_all_experiments,
    run_experiment,
)
from repro.exceptions import ValidationError


class TestRegistry:
    def test_all_nine_experiments_registered(self):
        experiments = available_experiments()
        assert sorted(experiments) == [
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
        ]

    def test_titles_are_non_empty(self):
        assert all(title for title in available_experiments().values())

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValidationError):
            run_experiment("E99", num_slots=10)

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ValidationError):
            run_experiment("E1", num_slots=0)

    def test_id_is_case_insensitive(self):
        report = run_experiment("e3", num_slots=60)
        assert report.experiment_id == "E3"


class TestExperimentRuns:
    def test_e1_passes_and_reports_metrics(self):
        report = run_experiment("E1", num_slots=120, seed=0)
        assert report.passed
        assert "final_cumulative_reward" in report.metrics

    def test_e2_passes(self):
        report = run_experiment("E2", num_slots=120, seed=0)
        assert report.passed
        assert "time_avg_cost[lyapunov]" in report.metrics

    def test_e3_passes(self):
        report = run_experiment("E3", num_slots=120, seed=0)
        assert report.passed
        assert report.metrics["service_rate_when_empty"] < 0.05

    def test_e4_includes_table(self):
        report = run_experiment("E4", num_slots=80, seed=0)
        assert report.passed
        assert "weight" in report.table

    def test_e5_includes_table(self):
        report = run_experiment("E5", num_slots=120, seed=0)
        assert report.passed
        assert "tradeoff_v" in report.table

    def test_e6_compares_policies(self):
        report = run_experiment("E6", num_slots=80, seed=0)
        assert report.passed
        assert report.metrics["mdp_total_reward"] >= report.metrics[
            "best_baseline_total_reward"
        ] - 1e-6

    def test_e7_reports_scalability(self):
        report = run_experiment("E7", num_slots=50, seed=0)
        assert report.passed
        assert report.metrics["wall_seconds_large"] > 0

    def test_e8_sweeps_registered_workloads(self):
        report = run_experiment("E8", num_slots=80, seed=0)
        assert report.passed
        assert "time_avg_backlog[flash-crowd]" in report.metrics
        assert "workload" in report.table

    def test_workload_override_reaches_the_scenarios(self):
        stationary = run_experiment("E2", num_slots=80, seed=0)
        drifted = run_experiment(
            "E2", num_slots=80, seed=0, workload="flash-crowd:burst_prob=0.2"
        )
        assert (
            drifted.metrics["time_avg_backlog[lyapunov]"]
            != stationary.metrics["time_avg_backlog[lyapunov]"]
        )

    def test_run_all_returns_ordered_reports(self):
        reports = run_all_experiments(num_slots=60, seed=0)
        assert [report.experiment_id for report in reports] == [
            "E1",
            "E2",
            "E3",
            "E4",
            "E5",
            "E6",
            "E7",
            "E8",
            "E9",
        ]


class TestExperimentReport:
    def test_render_contains_id_claim_and_metrics(self):
        report = ExperimentReport(
            experiment_id="EX",
            title="demo",
            claim="something holds",
            passed=True,
            metrics={"value": 1.25},
            table="col\n---\n1",
        )
        text = report.render()
        assert "[EX] demo" in text
        assert "PASS" in text
        assert "value" in text
        assert "col" in text

    def test_render_marks_failures(self):
        report = ExperimentReport(
            experiment_id="EX", title="demo", claim="c", passed=False
        )
        assert "FAIL" in report.render()
