"""Tests for repro.analysis.figures (figure data builders and ASCII rendering)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.figures import (
    build_fig1a_data,
    build_fig1b_data,
    render_fig1a,
    render_fig1b,
    render_series,
)
from repro.exceptions import ValidationError
from repro.sim.scenario import ScenarioConfig


@pytest.fixture(scope="module")
def fig1a_data():
    config = ScenarioConfig.fig1a(seed=1).with_overrides(num_slots=150)
    return build_fig1a_data(config)


@pytest.fixture(scope="module")
def fig1b_data():
    config = ScenarioConfig.fig1b(seed=1).with_overrides(num_slots=150)
    return build_fig1b_data(config)


class TestBuildFig1aData:
    def test_tracks_two_contents_by_default(self, fig1a_data):
        assert len(fig1a_data.content_ages) == 2
        for ages in fig1a_data.content_ages.values():
            assert ages.shape == fig1a_data.times.shape

    def test_cumulative_reward_length(self, fig1a_data):
        assert fig1a_data.cumulative_reward.shape == fig1a_data.times.shape

    def test_policy_name_recorded(self, fig1a_data):
        assert fig1a_data.policy_name == "mdp"

    def test_tracked_contents_stay_mostly_fresh(self, fig1a_data):
        for label in fig1a_data.content_ages:
            assert fig1a_data.violation_fraction(label) < 0.15

    def test_unknown_label_rejected(self, fig1a_data):
        with pytest.raises(ValidationError):
            fig1a_data.max_observed_age("nope")

    def test_invalid_tracked_rsu_rejected(self):
        config = ScenarioConfig.fig1a(seed=1).with_overrides(num_slots=10)
        with pytest.raises(ValidationError):
            build_fig1a_data(config, tracked_rsu=99)

    def test_invalid_tracked_slot_rejected(self):
        config = ScenarioConfig.fig1a(seed=1).with_overrides(num_slots=10)
        with pytest.raises(ValidationError):
            build_fig1a_data(config, tracked_slots=(0, 99))


class TestBuildFig1bData:
    def test_default_policy_set(self, fig1b_data):
        assert set(fig1b_data.latency) == {"lyapunov", "always-serve", "cost-greedy"}

    def test_series_lengths_match(self, fig1b_data):
        for series in fig1b_data.latency.values():
            assert series.shape == fig1b_data.times.shape

    def test_lyapunov_cost_not_higher_than_always_serve(self, fig1b_data):
        assert (
            fig1b_data.time_average_cost["lyapunov"]
            <= fig1b_data.time_average_cost["always-serve"] + 1e-9
        )

    def test_cost_greedy_has_largest_backlog(self, fig1b_data):
        backlogs = fig1b_data.time_average_backlog
        assert backlogs["cost-greedy"] >= backlogs["lyapunov"]
        assert backlogs["cost-greedy"] >= backlogs["always-serve"]


class TestRenderSeries:
    def test_contains_legend_and_title(self):
        text = render_series({"a": [1, 2, 3], "b": [3, 2, 1]}, title="demo")
        assert "demo" in text
        assert "a" in text and "b" in text
        assert "legend" in text

    def test_constant_series_does_not_crash(self):
        text = render_series({"flat": [5.0] * 10})
        assert "flat" in text

    def test_width_respected(self):
        text = render_series({"a": list(range(100))}, width=40, height=5)
        chart_lines = [line for line in text.splitlines() if line.startswith("|")]
        assert all(len(line) == 41 for line in chart_lines)
        assert len(chart_lines) == 5

    def test_empty_series_rejected(self):
        with pytest.raises(ValidationError):
            render_series({})

    def test_empty_values_rejected(self):
        with pytest.raises(ValidationError):
            render_series({"a": []})


class TestRenderFigures:
    def test_render_fig1a(self, fig1a_data):
        text = render_fig1a(fig1a_data)
        assert "Fig. 1a" in text
        assert "cumulative" in text

    def test_render_fig1b(self, fig1b_data):
        text = render_fig1b(fig1b_data)
        assert "Fig. 1b" in text
        assert "lyapunov" in text
        assert "time-avg cost" in text
