"""Tests for repro.analysis.stats."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    is_non_decreasing,
    linear_trend,
    mean_confidence_interval,
    moving_average,
    relative_improvement,
    tail_mean,
)
from repro.exceptions import ValidationError


class TestMeanConfidenceInterval:
    def test_mean_and_width(self):
        ci = mean_confidence_interval([1.0, 2.0, 3.0, 4.0], confidence=0.95)
        assert ci.mean == pytest.approx(2.5)
        assert ci.half_width > 0
        assert ci.low < 2.5 < ci.high
        assert ci.num_samples == 4

    def test_single_sample_has_zero_width(self):
        ci = mean_confidence_interval([5.0])
        assert ci.half_width == 0.0

    def test_contains(self):
        ci = mean_confidence_interval([1.0, 2.0, 3.0])
        assert ci.contains(ci.mean)
        assert not ci.contains(ci.high + 1.0)

    def test_higher_confidence_wider(self):
        data = list(np.linspace(0, 10, 30))
        narrow = mean_confidence_interval(data, confidence=0.80)
        wide = mean_confidence_interval(data, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            mean_confidence_interval([])

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            mean_confidence_interval([1.0, float("nan")])

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValidationError):
            mean_confidence_interval([1.0, 2.0], confidence=1.0)

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_mean_inside_interval(self, data):
        ci = mean_confidence_interval(data)
        assert ci.low <= ci.mean <= ci.high


class TestMovingAverage:
    def test_window_one_is_identity(self):
        data = [1.0, 5.0, 2.0]
        np.testing.assert_allclose(moving_average(data, 1), data)

    def test_smooths_constant_series(self):
        np.testing.assert_allclose(moving_average([3.0] * 10, 4), 3.0)

    def test_oversized_window_clamped(self):
        result = moving_average([1.0, 2.0, 3.0], 100)
        assert result.shape == (3,)

    def test_empty_input(self):
        assert moving_average([], 3).size == 0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValidationError):
            moving_average([1.0], 0)

    def test_2d_rejected(self):
        with pytest.raises(ValidationError):
            moving_average(np.ones((2, 2)), 2)


class TestLinearTrend:
    def test_exact_line_recovered(self):
        values = [2.0 + 0.5 * t for t in range(20)]
        slope, intercept = linear_trend(values)
        assert slope == pytest.approx(0.5)
        assert intercept == pytest.approx(2.0)

    def test_flat_series_zero_slope(self):
        slope, _ = linear_trend([3.0] * 10)
        assert slope == pytest.approx(0.0, abs=1e-12)

    def test_too_short_rejected(self):
        with pytest.raises(ValidationError):
            linear_trend([1.0])

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            linear_trend([1.0, float("nan"), 2.0])


class TestIsNonDecreasing:
    def test_monotone_series(self):
        assert is_non_decreasing([1, 2, 2, 3])

    def test_decreasing_series(self):
        assert not is_non_decreasing([3, 2, 1])

    def test_tolerance_absorbs_noise(self):
        assert is_non_decreasing([1.0, 0.9999999999, 2.0], tolerance=1e-6)

    def test_short_series(self):
        assert is_non_decreasing([5.0])


class TestTailMean:
    def test_second_half_mean(self):
        data = [0.0] * 5 + [10.0] * 5
        assert tail_mean(data, fraction=0.5) == pytest.approx(10.0)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValidationError):
            tail_mean([1.0, 2.0], fraction=1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            tail_mean([])


class TestRelativeImprovement:
    def test_lower_candidate_is_positive(self):
        assert relative_improvement(5.0, 10.0) == pytest.approx(0.5)

    def test_higher_candidate_is_negative(self):
        assert relative_improvement(15.0, 10.0) == pytest.approx(-0.5)

    def test_zero_baseline(self):
        assert relative_improvement(5.0, 0.0) == 0.0

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            relative_improvement(float("nan"), 1.0)
