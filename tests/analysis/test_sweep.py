"""Tests for repro.analysis.sweep (ablation sweeps and comparison tables)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sweep import (
    caching_policy_comparison,
    format_table,
    scalability_sweep,
    service_policy_comparison,
    v_sweep,
    weight_sweep,
    workload_sweep,
)
from repro.exceptions import ValidationError
from repro.sim.scenario import ScenarioConfig


@pytest.fixture(scope="module")
def tiny_fig1a():
    return ScenarioConfig.fig1a(seed=2).with_overrides(num_slots=80)


@pytest.fixture(scope="module")
def tiny_fig1b():
    return ScenarioConfig.fig1b(seed=2).with_overrides(num_slots=80)


class TestWeightSweep:
    def test_rows_and_keys(self, tiny_fig1a):
        rows = weight_sweep([0.5, 5.0], config=tiny_fig1a)
        assert len(rows) == 2
        assert {"weight", "mean_age", "total_cost", "total_reward"} <= set(rows[0])

    def test_higher_weight_buys_fresher_caches(self, tiny_fig1a):
        rows = weight_sweep([0.1, 20.0], config=tiny_fig1a)
        low, high = rows[0], rows[1]
        assert high["mean_age"] <= low["mean_age"] + 1e-9
        assert high["total_cost"] >= low["total_cost"] - 1e-9

    def test_empty_weights_rejected(self):
        with pytest.raises(ValidationError):
            weight_sweep([])


class TestVSweep:
    def test_rows_and_keys(self, tiny_fig1b):
        rows = v_sweep([1.0, 50.0], config=tiny_fig1b)
        assert len(rows) == 2
        assert {"tradeoff_v", "time_average_cost", "time_average_backlog"} <= set(rows[0])

    def test_larger_v_trades_cost_for_backlog(self, tiny_fig1b):
        rows = v_sweep([0.5, 200.0], config=tiny_fig1b)
        low, high = rows[0], rows[1]
        assert high["time_average_cost"] <= low["time_average_cost"] + 1e-9
        assert high["time_average_backlog"] >= low["time_average_backlog"] - 1e-9

    def test_empty_values_rejected(self):
        with pytest.raises(ValidationError):
            v_sweep([])


class TestCachingPolicyComparison:
    def test_contains_mdp_and_baselines(self, tiny_fig1a):
        rows = caching_policy_comparison(config=tiny_fig1a)
        names = {row["policy"] for row in rows}
        assert "mdp" in names
        assert {"never", "always", "random"} <= names

    def test_mdp_reward_at_least_as_good_as_naive_baselines(self, tiny_fig1a):
        rows = {row["policy"]: row for row in caching_policy_comparison(config=tiny_fig1a)}
        assert rows["mdp"]["total_reward"] >= rows["never"]["total_reward"]
        assert rows["mdp"]["total_reward"] >= rows["random"]["total_reward"]

    def test_never_has_zero_cost(self, tiny_fig1a):
        rows = {row["policy"]: row for row in caching_policy_comparison(config=tiny_fig1a)}
        assert rows["never"]["total_cost"] == 0.0


class TestServicePolicyComparison:
    def test_contains_expected_policies(self, tiny_fig1b):
        rows = service_policy_comparison(config=tiny_fig1b)
        names = {row["policy"] for row in rows}
        assert names == {"lyapunov", "always-serve", "cost-greedy"}

    def test_lyapunov_cost_not_above_always_serve(self, tiny_fig1b):
        rows = {row["policy"]: row for row in service_policy_comparison(config=tiny_fig1b)}
        assert (
            rows["lyapunov"]["time_average_cost"]
            <= rows["always-serve"]["time_average_cost"] + 1e-9
        )


class TestScalabilitySweep:
    def test_rows_and_throughput(self):
        rows = scalability_sweep(
            [
                {"num_rsus": 1, "contents_per_rsu": 2},
                {"num_rsus": 2, "contents_per_rsu": 2},
            ],
            num_slots=30,
        )
        assert len(rows) == 2
        assert all(row["slots_per_second"] > 0 for row in rows)
        assert rows[1]["num_contents"] == 4.0

    def test_empty_sizes_rejected(self):
        with pytest.raises(ValidationError):
            scalability_sweep([])


class TestFormatTable:
    def test_formats_rows(self):
        text = format_table([{"a": 1.0, "b": "x"}, {"a": 2.123456, "b": "y"}])
        assert "a" in text and "b" in text
        assert "2.123" in text

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_consistent(self):
        text = format_table([{"name": "long-policy-name", "v": 1.0}])
        lines = text.splitlines()
        assert len(lines) == 3
        assert len(lines[0]) == len(lines[1])


class TestWorkloadSweep:
    WORKLOADS = ["stationary", "drift:period=10", "flash-crowd:burst_prob=0.2"]

    def test_service_rows_and_keys(self, tiny_fig1b):
        rows = workload_sweep(self.WORKLOADS, config=tiny_fig1b, num_slots=60)
        assert len(rows) == 3
        assert {"workload", "time_average_cost", "time_average_backlog"} <= set(
            rows[0]
        )
        assert [row["workload"] for row in rows] == [
            "stationary",
            "drift(period=10)",
            "flash-crowd(burst_prob=0.2)",
        ]

    def test_cache_kind_uses_mdp_metrics(self, tiny_fig1a):
        rows = workload_sweep(
            ["stationary", "shot-noise:event_rate=0.1"],
            kind="cache",
            config=tiny_fig1a,
            num_slots=40,
        )
        assert {"workload", "total_reward", "mean_age"} <= set(rows[0])

    def test_joint_kind_reports_both_stages(self):
        config = ScenarioConfig.small(seed=1, num_slots=40)
        rows = workload_sweep(
            ["stationary", "drift:period=5"], kind="joint", config=config
        )
        assert {"cache_total_reward", "service_time_average_cost"} <= set(rows[0])

    def test_multi_seed_rows_carry_ci(self, tiny_fig1b):
        rows = workload_sweep(
            ["stationary", "drift:period=10"],
            config=tiny_fig1b,
            num_slots=40,
            num_seeds=3,
        )
        assert all(row["num_seeds"] == 3 for row in rows)
        assert "time_average_cost_ci" in rows[0]

    def test_identical_across_worker_counts(self, tiny_fig1b):
        serial = workload_sweep(
            self.WORKLOADS, config=tiny_fig1b, num_slots=40, num_seeds=2, workers=1
        )
        parallel = workload_sweep(
            self.WORKLOADS, config=tiny_fig1b, num_slots=40, num_seeds=2, workers=2
        )
        assert serial == parallel

    def test_empty_workloads_rejected(self):
        with pytest.raises(ValidationError):
            workload_sweep([])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            workload_sweep(["stationary"], kind="quantum")
